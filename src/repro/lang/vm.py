"""MicroC virtual machine with taint and symbolic-expression tracking.

The VM is the reproduction's Valgrind: it executes type-checked MicroC
programs on concrete inputs while maintaining, for every value, a shadow
symbolic expression over the named input fields (§3.2's "full symbolic
expression of each computed value").  It records executed conditional
branches, allocation sites, and divisions, and it detects the three error
classes of the paper's evaluation — integer overflow at allocation sites,
out-of-bounds buffer accesses, and divide-by-zero — plus null dereferences.

An inserted patch calls ``exit(-1)``; that terminates the run with status
``EXIT`` which, by design, is *not* an error: the patch narrows the set of
inputs the application accepts, exactly as described in §1.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Union

from ..formats.fields import FieldMap
from ..formats.raw import RawFormat
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..symbolic import builder
from ..symbolic.expr import Constant, Expr
from ..symbolic.simplify import SimplifyOptions, simplify
from . import ast
from .checker import BUILTIN_SIGNATURES, Program
from .memory import (
    Buffer,
    Cell,
    MemoryFault,
    Pointer,
    StructInstance,
    TaintedValue,
    instantiate,
    make_value,
    new_cell,
    null_pointer,
)
from .trace import (
    AllocationRecord,
    BranchRecord,
    DivisionRecord,
    ErrorKind,
    ErrorReport,
    Hooks,
    NullHooks,
    RunResult,
    RunStatus,
)
from .types import I32, IntType, PointerType, StructType, Type, U8, U16, U32, U64, promote

Value = Union[TaintedValue, Pointer, StructInstance]


class VMError(Exception):
    """Raised for internal VM misuse (not application-level errors)."""


class _ExitSignal(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[Value]) -> None:
        self.value = value


class _ErrorSignal(Exception):
    def __init__(self, report: ErrorReport) -> None:
        self.report = report


# Process-wide default for VMConfig.use_compiled, so one switch (the CLI's
# --no-compile flag) reaches every config constructed afterwards, including in
# fork-started campaign workers which inherit the flag with the address space.
_COMPILED_TIER_DEFAULT = True


def set_default_execution_tier(compiled: bool) -> None:
    """Select the default execution tier for newly created :class:`VMConfig`\\ s."""
    global _COMPILED_TIER_DEFAULT
    _COMPILED_TIER_DEFAULT = bool(compiled)


def default_execution_tier() -> bool:
    """Whether new configs default to the compiled tier."""
    return _COMPILED_TIER_DEFAULT


@dataclass
class VMConfig:
    """Execution configuration."""

    max_steps: int = 500_000
    track_symbolic: bool = True
    simplify_options: SimplifyOptions = dataclass_field(default_factory=SimplifyOptions)
    detect_allocation_overflow: bool = True
    #: Cumulative bytes ``malloc``/``malloc64`` may hand out in one run before
    #: the VM reports :class:`ErrorKind.RESOURCE_EXHAUSTED` — the stand-in for
    #: a real process being OOM-killed.  1 TiB is far above anything a 32-bit
    #: allocation can request, so only ``malloc64`` callers (and pathological
    #: allocation loops) can reach it; 0 disables the budget.
    max_heap_bytes: int = 1 << 40
    #: Execute via the bytecode tier (repro.lang.compile) when possible.
    #: Hooked runs always take the interpreter: the insertion-point analysis
    #: reads live frames, which compiled code does not materialise.
    use_compiled: bool = dataclass_field(
        default_factory=lambda: _COMPILED_TIER_DEFAULT
    )


@dataclass
class Frame:
    """One function activation."""

    function: str
    invocation: int
    locals: dict[str, Cell] = dataclass_field(default_factory=dict)
    fields_accessed: set[str] = dataclass_field(default_factory=set)
    current_statement: Optional[ast.Statement] = None


class _InputStream:
    """Sequential reader over the input bytes with per-byte symbolic labels."""

    def __init__(self, data: bytes, field_map: FieldMap, track_symbolic: bool) -> None:
        self.data = data
        self.field_map = field_map
        self.cursor = 0
        self.track_symbolic = track_symbolic
        self.fields_read: set[str] = set()

    def read_byte(self) -> TaintedValue:
        if self.cursor >= len(self.data):
            # Reading past the end yields untainted zero bytes (files are
            # implicitly zero-padded); applications check lengths themselves.
            self.cursor += 1
            return TaintedValue(0, 8)
        value = self.data[self.cursor]
        symbolic: Optional[Expr] = None
        if self.track_symbolic:
            symbolic = self.field_map.symbolic_byte(self.cursor)
            self.fields_read.update(symbolic.fields())
        self.cursor += 1
        return TaintedValue(value=value, width=8, symbolic=symbolic)

    def skip(self, count: int) -> None:
        self.cursor += count

    def remaining(self) -> int:
        return max(len(self.data) - self.cursor, 0)


class VM:
    """Interpreter for type-checked MicroC programs."""

    def __init__(self, program: Program, config: Optional[VMConfig] = None) -> None:
        self.program = program
        self.config = config or VMConfig()
        # Per-run state (reset in run()).
        self.globals: dict[str, Cell] = {}
        self.hooks: Hooks = NullHooks()
        self.result: RunResult = RunResult(status=RunStatus.OK)
        self._stream: Optional[_InputStream] = None
        self._steps = 0
        self._branch_sequence = 0
        self._allocation_sequence = 0
        self._division_sequence = 0
        self._invocations = 0
        self._heap_allocated = 0
        self._frames: list[Frame] = []
        #: Buffers allocated by the most recent run, in allocation order
        #: (either tier); the differential harness snapshots heap state here.
        self.heap: list[Buffer] = []

    # -- public API -----------------------------------------------------------------

    def run(
        self,
        data: bytes,
        field_map: Optional[FieldMap] = None,
        hooks: Optional[Hooks] = None,
        entry: str = "main",
    ) -> RunResult:
        """Execute the program on ``data`` and return the run result."""
        if self.config.use_compiled and (hooks is None or isinstance(hooks, NullHooks)):
            from .compile import run_compiled

            return run_compiled(self, data, field_map=field_map, entry=entry)

        # Observability hook: one flag check each when telemetry is off.
        tracer = obs_tracing.active()
        registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None
        started = time.perf_counter() if (tracer or registry) else 0.0

        if field_map is None:
            field_map = RawFormat().field_map(data)
        self.globals = {}
        for name, ctype in self.program.global_types.items():
            cell = new_cell(ctype)
            if isinstance(ctype, IntType):
                cell.value = make_value(self.program.global_inits.get(name, 0), ctype)
            self.globals[name] = cell
        self.hooks = hooks or NullHooks()
        self.result = RunResult(status=RunStatus.OK)
        self._stream = _InputStream(data, field_map, self.config.track_symbolic)
        self._steps = 0
        self._heap_allocated = 0
        self._branch_sequence = 0
        self._allocation_sequence = 0
        self._division_sequence = 0
        self._invocations = 0
        self._frames = []
        self.heap = []

        try:
            value = self._call_function(entry, [])
            self.result.status = RunStatus.OK
            self.result.exit_code = value.as_int if isinstance(value, TaintedValue) else 0
        except _ExitSignal as signal:
            self.result.status = RunStatus.EXIT
            self.result.exit_code = signal.code
        except _ErrorSignal as signal:
            self.result.status = RunStatus.ERROR
            self.result.error = signal.report
            self.result.exit_code = 1
        self.result.steps = self._steps
        self.result.fields_read = frozenset(self._stream.fields_read)
        if registry is not None:
            registry.inc("vm.runs")
            registry.inc("vm.runs_interpreted")
            registry.inc("vm.instructions_retired", self._steps)
            registry.observe("vm.run_seconds", time.perf_counter() - started)
        if tracer is not None:
            tracer.record(
                "vm-run",
                "vm",
                time.perf_counter() - started,
                entry=entry,
                steps=self._steps,
                status=self.result.status.name,
                tier="interpreter",
            )
        return self.result

    # -- frames and errors -------------------------------------------------------------

    @property
    def current_frame(self) -> Frame:
        if not self._frames:
            raise VMError("no active frame")
        return self._frames[-1]

    def _raise_error(self, kind: ErrorKind, message: str) -> None:
        frame = self._frames[-1] if self._frames else Frame(function="<entry>", invocation=0)
        statement = frame.current_statement
        raise _ErrorSignal(
            ErrorReport(
                kind=kind,
                message=message,
                function=frame.function,
                statement_id=statement.node_id if statement is not None else -1,
                line=statement.line if statement is not None else 0,
            )
        )

    def _step(self) -> None:
        self._steps += 1
        if self._steps > self.config.max_steps:
            self._raise_error(
                ErrorKind.RESOURCE_EXHAUSTED,
                f"execution exceeded {self.config.max_steps} steps",
            )

    # -- function calls -----------------------------------------------------------------

    def _call_function(self, name: str, arguments: list[Value]) -> Value:
        function = self.program.function(name)
        signature = self.program.signature(name)
        self._invocations += 1
        frame = Frame(function=name, invocation=self._invocations)
        for parameter, parameter_type, argument in zip(
            function.parameters, signature.parameter_types, arguments
        ):
            cell = Cell(declared_type=parameter_type)
            cell.value = self._convert_for_store(argument, parameter_type)
            frame.locals[parameter.name] = cell
        self._frames.append(frame)
        self.hooks.on_call(self, frame)
        try:
            self._exec_block(function.body, frame)
            return_value: Value = make_value(0, I32)
        except _ReturnSignal as signal:
            if signal.value is None:
                return_value = make_value(0, I32)
            elif isinstance(signature.return_type, IntType) and isinstance(
                signal.value, TaintedValue
            ):
                return_value = self._convert_int(signal.value, signature.return_type)
            else:
                return_value = signal.value
        finally:
            self.hooks.on_return(self, frame)
            self._frames.pop()
        return return_value

    # -- statements ------------------------------------------------------------------------

    def _exec_block(self, block: ast.Block, frame: Frame) -> None:
        for statement in block.statements:
            self._exec_statement(statement, frame)

    def _exec_statement(self, statement: ast.Statement, frame: Frame) -> None:
        self._step()
        frame.current_statement = statement
        try:
            self._dispatch_statement(statement, frame)
        except MemoryFault as fault:
            kind = {
                "out-of-bounds-write": ErrorKind.OUT_OF_BOUNDS_WRITE,
                "out-of-bounds-read": ErrorKind.OUT_OF_BOUNDS_READ,
                "null-dereference": ErrorKind.NULL_DEREFERENCE,
                "divide-by-zero": ErrorKind.DIVIDE_BY_ZERO,
            }.get(fault.kind, ErrorKind.NULL_DEREFERENCE)
            self._raise_error(kind, fault.message)
        self.hooks.on_statement(self, frame, statement)

    def _dispatch_statement(self, statement: ast.Statement, frame: Frame) -> None:
        if isinstance(statement, ast.VarDecl):
            ctype = self._declared_type(statement)
            cell = Cell(declared_type=ctype, value=instantiate(ctype))
            if statement.init is not None:
                cell.value = self._convert_for_store(self._eval(statement.init, frame), ctype)
            frame.locals[statement.name] = cell
            return

        if isinstance(statement, ast.Assign):
            value = self._eval(statement.value, frame)
            cell = self._eval_lvalue(statement.target, frame)
            cell.value = self._convert_for_store(value, cell.declared_type)
            return

        if isinstance(statement, ast.If):
            condition = self._eval(statement.condition, frame)
            taken = self._record_branch(statement, condition, frame)
            if taken:
                self._exec_block(statement.then_block, frame)
            elif statement.else_block is not None:
                self._exec_block(statement.else_block, frame)
            return

        if isinstance(statement, ast.While):
            while True:
                condition = self._eval(statement.condition, frame)
                taken = self._record_branch(statement, condition, frame)
                if not taken:
                    break
                self._exec_block(statement.body, frame)
                self._step()
            return

        if isinstance(statement, ast.Return):
            value = self._eval(statement.value, frame) if statement.value is not None else None
            raise _ReturnSignal(value)

        if isinstance(statement, ast.ExprStmt):
            self._eval(statement.expression, frame)
            return

        raise VMError(f"unknown statement {type(statement).__name__}")

    def _declared_type(self, statement: ast.VarDecl) -> Type:
        # The checker resolved and validated types; re-resolve on demand here
        # (with a small cache) to keep statement nodes free of annotations.
        cached = getattr(self, "_type_cache", None)
        if cached is None:
            cached = {}
            self._type_cache = cached
        if statement.node_id in cached:
            return cached[statement.node_id]
        from .checker import Checker

        checker = Checker(self.program.unit)
        checker.struct_table = self.program.struct_table
        resolved = checker._resolve(statement.type_ref)
        cached[statement.node_id] = resolved
        return resolved

    def _record_branch(
        self, statement: ast.Statement, condition: Value, frame: Frame
    ) -> bool:
        if isinstance(condition, Pointer):
            taken = not condition.is_null
            condition_value = 0 if condition.is_null else 1
            symbolic = None
        elif isinstance(condition, TaintedValue):
            taken = condition.truth
            condition_value = condition.value
            symbolic = None
            if condition.symbolic is not None:
                symbolic = simplify(
                    builder.is_nonzero(condition.symbolic), self.config.simplify_options
                )
        else:
            raise VMError("invalid branch condition value")
        record = BranchRecord(
            branch_id=statement.node_id,
            function=frame.function,
            line=statement.line,
            taken=taken,
            condition_value=condition_value,
            symbolic=symbolic,
            sequence=self._branch_sequence,
        )
        self._branch_sequence += 1
        self.result.branches.append(record)
        self.hooks.on_branch(self, frame, record)
        return taken

    # -- expression evaluation -----------------------------------------------------------------

    def _eval(self, expression: ast.Expression, frame: Frame) -> Value:
        self._step()

        if isinstance(expression, ast.IntLiteral):
            ctype = expression.ctype if isinstance(expression.ctype, IntType) else I32
            return make_value(expression.value, ctype)

        if isinstance(expression, ast.Name):
            cell = self._lookup(expression.name, frame)
            return self._note(frame, cell.value)

        if isinstance(expression, ast.FieldAccess):
            cell = self._field_cell(expression, frame)
            return self._note(frame, cell.value)

        if isinstance(expression, ast.Deref):
            pointer = self._eval(expression.operand, frame)
            cell = self._deref(pointer)
            return self._note(frame, cell.value)

        if isinstance(expression, ast.AddressOf):
            cell = self._eval_lvalue(expression.operand, frame)
            return Pointer(target=cell, pointee_type=cell.declared_type)

        if isinstance(expression, ast.Unary):
            return self._eval_unary(expression, frame)

        if isinstance(expression, ast.Binary):
            return self._eval_binary(expression, frame)

        if isinstance(expression, ast.Cast):
            value = self._eval(expression.operand, frame)
            target = expression.ctype
            if isinstance(target, IntType) and isinstance(value, TaintedValue):
                return self._convert_int(value, target, preserve_true=True)
            if isinstance(target, PointerType) and isinstance(value, Pointer):
                return Pointer(target=value.target, pointee_type=target.pointee)
            if isinstance(target, IntType) and isinstance(value, Pointer):
                return make_value(0 if value.is_null else 1, target)
            raise VMError(f"unsupported cast to {target}")

        if isinstance(expression, ast.Call):
            return self._eval_call(expression, frame)

        raise VMError(f"unknown expression {type(expression).__name__}")

    def _note(self, frame: Frame, value: Value) -> Value:
        """Record the input fields a frame has accessed (for insertion points)."""
        if isinstance(value, TaintedValue) and value.symbolic is not None:
            frame.fields_accessed.update(value.symbolic.fields())
        return value

    def _lookup(self, name: str, frame: Frame) -> Cell:
        if name in frame.locals:
            return frame.locals[name]
        if name in self.globals:
            return self.globals[name]
        raise VMError(f"unknown variable {name!r} in {frame.function}")

    def _field_cell(self, expression: ast.FieldAccess, frame: Frame) -> Cell:
        if expression.arrow:
            pointer = self._eval(expression.base, frame)
            if not isinstance(pointer, Pointer):
                raise VMError("-> applied to a non-pointer")
            cell = self._deref(pointer)
            instance = cell.value
        else:
            base_cell = self._eval_lvalue(expression.base, frame)
            instance = base_cell.value
        if not isinstance(instance, StructInstance):
            raise MemoryFault("null-dereference", "field access on a non-struct value")
        return instance.cell(expression.field_name)

    def _deref(self, pointer: Value) -> Cell:
        if not isinstance(pointer, Pointer):
            raise VMError("dereference of a non-pointer value")
        if pointer.is_null:
            raise MemoryFault("null-dereference", "null pointer dereference")
        if isinstance(pointer.target, Buffer):
            raise MemoryFault(
                "null-dereference", "cannot dereference a heap buffer without an index"
            )
        return pointer.target

    def _eval_lvalue(self, expression: ast.Expression, frame: Frame) -> Cell:
        if isinstance(expression, ast.Name):
            return self._lookup(expression.name, frame)
        if isinstance(expression, ast.FieldAccess):
            return self._field_cell(expression, frame)
        if isinstance(expression, ast.Deref):
            pointer = self._eval(expression.operand, frame)
            return self._deref(pointer)
        raise VMError(f"{type(expression).__name__} is not an lvalue")

    # -- integer operations --------------------------------------------------------------------

    def _symbolic_of(self, value: TaintedValue) -> Expr:
        if value.symbolic is not None:
            return value.symbolic
        return Constant(width=value.width, value=value.value)

    def _convert_int(
        self, value: TaintedValue, target: IntType, preserve_true: bool = False
    ) -> TaintedValue:
        """Convert an integer value to the target type (C conversion rules)."""
        if value.width == target.width and value.signed == target.signed:
            return TaintedValue(
                value=value.value,
                width=target.width,
                signed=target.signed,
                symbolic=value.symbolic,
                true_value=value.true_value,
            )
        raw = value.as_int
        symbolic = None
        if value.symbolic is not None:
            if target.width > value.width:
                symbolic = (
                    builder.sext(value.symbolic, target.width)
                    if value.signed
                    else builder.zext(value.symbolic, target.width)
                )
            elif target.width < value.width:
                symbolic = builder.shrink(value.symbolic, target.width)
            else:
                symbolic = value.symbolic
            symbolic = simplify(symbolic, self.config.simplify_options)
        converted = TaintedValue(
            value=raw, width=target.width, signed=target.signed, symbolic=symbolic
        )
        if preserve_true or target.width >= value.width:
            # Widening (and explicit casts) carry the true value along so that
            # later overflow checks see the full computation.
            converted = TaintedValue(
                value=raw,
                width=target.width,
                signed=target.signed,
                symbolic=symbolic,
                true_value=value.true_value,
            )
        return converted

    def _convert_for_store(self, value: Value, target: Type) -> Value:
        if isinstance(target, IntType):
            if not isinstance(value, TaintedValue):
                raise VMError(f"cannot store {type(value).__name__} into integer cell")
            return self._convert_int(value, target)
        if isinstance(target, PointerType):
            if isinstance(value, Pointer):
                return Pointer(target=value.target, pointee_type=target.pointee)
            if isinstance(value, TaintedValue) and value.value == 0:
                return null_pointer(target.pointee)
            raise VMError("cannot store a non-pointer into a pointer cell")
        if isinstance(target, StructType):
            if isinstance(value, StructInstance):
                return value
            raise VMError("cannot store a non-struct into a struct cell")
        raise VMError(f"cannot store into cell of type {target}")

    def _eval_unary(self, expression: ast.Unary, frame: Frame) -> Value:
        operand = self._eval(expression.operand, frame)
        if expression.op == "!":
            if isinstance(operand, Pointer):
                return make_value(1 if operand.is_null else 0, I32)
            if not isinstance(operand, TaintedValue):
                raise VMError("! applied to a non-scalar")
            symbolic = None
            if operand.symbolic is not None:
                symbolic = simplify(
                    builder.zext(
                        builder.logical_not(builder.is_nonzero(operand.symbolic)), 32
                    ),
                    self.config.simplify_options,
                )
            return TaintedValue(
                value=0 if operand.truth else 1, width=32, signed=True, symbolic=symbolic
            )
        if not isinstance(operand, TaintedValue):
            raise VMError(f"unary {expression.op} applied to a non-scalar")
        ctype = expression.ctype if isinstance(expression.ctype, IntType) else I32
        operand = self._convert_int(operand, ctype)
        if expression.op == "-":
            symbolic = None
            if operand.symbolic is not None:
                symbolic = simplify(builder.neg(operand.symbolic), self.config.simplify_options)
            return TaintedValue(
                value=-operand.value,
                width=ctype.width,
                signed=ctype.signed,
                symbolic=symbolic,
                true_value=-(operand.true_value if operand.true_value is not None else 0),
            )
        if expression.op == "~":
            symbolic = None
            if operand.symbolic is not None:
                symbolic = simplify(builder.bvnot(operand.symbolic), self.config.simplify_options)
            return TaintedValue(
                value=~operand.value, width=ctype.width, signed=ctype.signed, symbolic=symbolic
            )
        raise VMError(f"unknown unary operator {expression.op!r}")

    def _eval_binary(self, expression: ast.Binary, frame: Frame) -> Value:
        op = expression.op

        if op in ("&&", "||"):
            return self._eval_logical(expression, frame)

        left = self._eval(expression.left, frame)
        right = self._eval(expression.right, frame)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._eval_comparison(expression, left, right)

        if not isinstance(left, TaintedValue) or not isinstance(right, TaintedValue):
            raise VMError(f"operator {op!r} applied to non-scalar operands")

        result_type = expression.ctype if isinstance(expression.ctype, IntType) else I32
        left = self._convert_int(left, result_type)
        right = self._convert_int(right, result_type)
        return self._apply_arithmetic(expression, op, left, right, result_type, frame)

    def _eval_logical(self, expression: ast.Binary, frame: Frame) -> TaintedValue:
        left = self._eval(expression.left, frame)
        left_truth, left_sym = self._truth_of(left)
        if expression.op == "&&" and not left_truth:
            right_truth, right_sym = False, None
            value = 0
            evaluated_right = False
        elif expression.op == "||" and left_truth:
            right_truth, right_sym = True, None
            value = 1
            evaluated_right = False
        else:
            right = self._eval(expression.right, frame)
            right_truth, right_sym = self._truth_of(right)
            value = int(right_truth if expression.op == "&&" else (left_truth or right_truth))
            evaluated_right = True

        symbolic = None
        if left_sym is not None or right_sym is not None:
            left_bool = left_sym if left_sym is not None else builder.const(int(left_truth), 1)
            if evaluated_right:
                right_bool = (
                    right_sym if right_sym is not None else builder.const(int(right_truth), 1)
                )
                combined = (
                    builder.logical_and(left_bool, right_bool)
                    if expression.op == "&&"
                    else builder.logical_or(left_bool, right_bool)
                )
            else:
                combined = left_bool
            symbolic = simplify(builder.zext(combined, 32), self.config.simplify_options)
        return TaintedValue(value=value, width=32, signed=True, symbolic=symbolic)

    def _truth_of(self, value: Value) -> tuple[bool, Optional[Expr]]:
        if isinstance(value, Pointer):
            return (not value.is_null), None
        if isinstance(value, TaintedValue):
            symbolic = None
            if value.symbolic is not None:
                symbolic = builder.is_nonzero(value.symbolic)
            return value.truth, symbolic
        raise VMError("invalid truth operand")

    def _eval_comparison(
        self, expression: ast.Binary, left: Value, right: Value
    ) -> TaintedValue:
        op = expression.op
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            # Pointer comparisons: against the null constant (integer 0) or
            # against another pointer (identity of the referenced object).
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                equal = left.target is right.target
            else:
                pointer = left if isinstance(left, Pointer) else right
                other = right if isinstance(left, Pointer) else left
                if not isinstance(other, TaintedValue) or other.value != 0:
                    raise VMError("pointers may only be compared with pointers or 0")
                equal = pointer.is_null
            if op == "==":
                result = int(equal)
            elif op == "!=":
                result = int(not equal)
            else:
                raise VMError(f"pointer comparison {op!r} not supported")
            return make_value(result, I32)

        if not isinstance(left, TaintedValue) or not isinstance(right, TaintedValue):
            raise VMError("comparison of non-scalar values")

        common = promote(
            IntType(left.width, left.signed), IntType(right.width, right.signed)
        )
        left = self._convert_int(left, common)
        right = self._convert_int(right, common)
        left_int, right_int = left.as_int, right.as_int
        concrete = {
            "==": left_int == right_int,
            "!=": left_int != right_int,
            "<": left_int < right_int,
            "<=": left_int <= right_int,
            ">": left_int > right_int,
            ">=": left_int >= right_int,
        }[op]

        symbolic = None
        if left.symbolic is not None or right.symbolic is not None:
            left_sym = self._symbolic_of(left)
            right_sym = self._symbolic_of(right)
            comparison_builders_signed = {
                "==": builder.eq,
                "!=": builder.ne,
                "<": builder.slt,
                "<=": builder.sle,
                ">": builder.sgt,
                ">=": builder.sge,
            }
            comparison_builders_unsigned = {
                "==": builder.eq,
                "!=": builder.ne,
                "<": builder.ult,
                "<=": builder.ule,
                ">": builder.ugt,
                ">=": builder.uge,
            }
            table = comparison_builders_signed if common.signed else comparison_builders_unsigned
            symbolic = simplify(
                builder.zext(table[op](left_sym, right_sym), 32), self.config.simplify_options
            )
        return TaintedValue(value=int(concrete), width=32, signed=True, symbolic=symbolic)

    def _apply_arithmetic(
        self,
        expression: ast.Binary,
        op: str,
        left: TaintedValue,
        right: TaintedValue,
        result_type: IntType,
        frame: Frame,
    ) -> TaintedValue:
        width = result_type.width
        mask = (1 << width) - 1
        left_raw = left.as_int if result_type.signed else left.value
        right_raw = right.as_int if result_type.signed else right.value
        left_true = left.true_value if left.true_value is not None else left_raw
        right_true = right.true_value if right.true_value is not None else right_raw

        symbolic: Optional[Expr] = None
        tainted = left.symbolic is not None or right.symbolic is not None

        if op in ("/", "%"):
            self.result.divisions.append(
                DivisionRecord(
                    site_id=expression.node_id,
                    function=frame.function,
                    line=expression.line,
                    divisor=right.value,
                    symbolic=right.symbolic,
                    sequence=self._division_sequence,
                )
            )
            self._division_sequence += 1
            if right.value == 0:
                raise MemoryFault("divide-by-zero", f"division by zero at line {expression.line}")

        if op == "+":
            value = left_raw + right_raw
            true_value = left_true + right_true
        elif op == "-":
            value = left_raw - right_raw
            true_value = left_true - right_true
        elif op == "*":
            value = left_raw * right_raw
            true_value = left_true * right_true
        elif op == "/":
            if result_type.signed:
                quotient = abs(left_raw) // abs(right_raw)
                value = -quotient if (left_raw < 0) != (right_raw < 0) else quotient
            else:
                value = left_raw // right_raw
            true_value = value
        elif op == "%":
            if result_type.signed:
                remainder = abs(left_raw) % abs(right_raw)
                value = -remainder if left_raw < 0 else remainder
            else:
                value = left_raw % right_raw
            true_value = value
        elif op == "&":
            value = left.value & right.value
            true_value = value
        elif op == "|":
            value = left.value | right.value
            true_value = value
        elif op == "^":
            value = left.value ^ right.value
            true_value = value
        elif op == "<<":
            shift = right.value
            value = 0 if shift >= width else (left.value << shift)
            true_value = left_true << min(shift, 256)
        elif op == ">>":
            shift = right.value
            if result_type.signed:
                value = left.as_int >> min(shift, width - 1)
            else:
                value = 0 if shift >= width else (left.value >> shift)
            true_value = value
        else:
            raise VMError(f"unknown binary operator {op!r}")

        if tainted and self.config.track_symbolic:
            left_sym = self._symbolic_of(left)
            right_sym = self._symbolic_of(right)
            op_builders = {
                "+": builder.add,
                "-": builder.sub,
                "*": builder.mul,
                "/": builder.sdiv if result_type.signed else builder.udiv,
                "%": builder.srem if result_type.signed else builder.urem,
                "&": builder.bvand,
                "|": builder.bvor,
                "^": builder.bvxor,
                "<<": builder.shl,
                ">>": builder.ashr if result_type.signed else builder.lshr,
            }
            symbolic = simplify(
                op_builders[op](left_sym, right_sym, width), self.config.simplify_options
            )

        return TaintedValue(
            value=value,
            width=width,
            signed=result_type.signed,
            symbolic=symbolic,
            true_value=true_value,
        )

    # -- calls and builtins ------------------------------------------------------------------------

    def _eval_call(self, expression: ast.Call, frame: Frame) -> Value:
        callee = expression.callee
        if callee.startswith("__sizeof:"):
            return make_value(self._sizeof(callee.split(":", 1)[1]), U32)
        if callee in BUILTIN_SIGNATURES and callee not in self.program.functions:
            return self._eval_builtin(expression, frame)
        arguments = [self._eval(argument, frame) for argument in expression.args]
        return self._call_function(callee, arguments)

    def _sizeof(self, type_text: str) -> int:
        if type_text.endswith("*"):
            return 8
        if type_text.startswith("struct "):
            struct = self.program.struct_table.lookup(type_text[len("struct ") :])
            return sum(self._sizeof(str(field.type)) for field in struct.fields)
        from .types import integer_type

        resolved = integer_type(type_text)
        return (resolved.width // 8) if resolved is not None else 8

    def _eval_builtin(self, expression: ast.Call, frame: Frame) -> Value:
        callee = expression.callee
        stream = self._stream
        assert stream is not None

        if callee == "read_byte":
            return self._note(frame, stream.read_byte())
        if callee in ("read_u16_be", "read_u16_le", "read_u32_be", "read_u32_le"):
            return self._note(frame, self._read_multi(callee))
        if callee == "skip_bytes":
            count = self._eval(expression.args[0], frame)
            stream.skip(count.value if isinstance(count, TaintedValue) else 0)
            return make_value(0, I32)
        if callee == "input_remaining":
            return make_value(stream.remaining(), U32)
        if callee in ("malloc", "malloc64"):
            return self._builtin_malloc(expression, frame)
        if callee == "store8":
            return self._builtin_store8(expression, frame)
        if callee == "load8":
            return self._builtin_load8(expression, frame)
        if callee == "exit":
            code = self._eval(expression.args[0], frame)
            raise _ExitSignal(code.as_int if isinstance(code, TaintedValue) else 0)
        if callee == "emit":
            value = self._eval(expression.args[0], frame)
            if isinstance(value, TaintedValue):
                self.result.output.append(value.value)
            return make_value(0, I32)
        raise VMError(f"unknown builtin {callee!r}")

    def _read_multi(self, callee: str) -> TaintedValue:
        stream = self._stream
        assert stream is not None
        size = 2 if "u16" in callee else 4
        big_endian = callee.endswith("_be")
        byte_values = [stream.read_byte() for _ in range(size)]
        ordered = byte_values if big_endian else list(reversed(byte_values))
        value = 0
        for byte in ordered:
            value = (value << 8) | byte.value
        symbolic: Optional[Expr] = None
        if any(byte.symbolic is not None for byte in byte_values):
            parts = [self._symbolic_of(byte) for byte in ordered]
            symbolic = simplify(builder.concat(*parts), self.config.simplify_options)
        ctype = U16 if size == 2 else U32
        return TaintedValue(value=value, width=ctype.width, signed=False, symbolic=symbolic)

    def _builtin_malloc(self, expression: ast.Call, frame: Frame) -> Pointer:
        size_value = self._eval(expression.args[0], frame)
        if not isinstance(size_value, TaintedValue):
            raise VMError("malloc requires an integer size")
        width = 64 if expression.callee == "malloc64" else 32
        wrapped = size_value.value & ((1 << width) - 1)
        true_size = size_value.true_value if size_value.true_value is not None else wrapped
        overflowed = (true_size != wrapped) or true_size < 0
        symbolic = size_value.symbolic
        statement = frame.current_statement
        record = AllocationRecord(
            site_id=expression.node_id,
            statement_id=statement.node_id if statement is not None else -1,
            function=frame.function,
            line=expression.line,
            size=wrapped,
            true_size=true_size,
            symbolic=symbolic,
            overflowed=overflowed,
            sequence=self._allocation_sequence,
        )
        self._allocation_sequence += 1
        self.result.allocations.append(record)
        self.hooks.on_allocation(self, frame, record)
        if overflowed and self.config.detect_allocation_overflow:
            self._raise_error(
                ErrorKind.INTEGER_OVERFLOW,
                f"allocation size overflows: true size {true_size} wraps to {wrapped} "
                f"at {frame.function} line {expression.line}",
            )
        self._heap_allocated += wrapped
        if self.config.max_heap_bytes and self._heap_allocated > self.config.max_heap_bytes:
            self._raise_error(
                ErrorKind.RESOURCE_EXHAUSTED,
                f"heap exhausted: {self._heap_allocated} bytes allocated exceeds "
                f"the {self.config.max_heap_bytes}-byte budget "
                f"at {frame.function} line {expression.line}",
            )
        buffer = Buffer(
            size=wrapped,
            site_id=expression.node_id,
            function=frame.function,
            overflowed_size=overflowed,
        )
        self.heap.append(buffer)
        return Pointer(target=buffer, pointee_type=U8)

    def _buffer_of(self, value: Value) -> Buffer:
        if not isinstance(value, Pointer):
            raise VMError("expected a buffer pointer")
        if value.is_null:
            raise MemoryFault("null-dereference", "null buffer pointer")
        if not isinstance(value.target, Buffer):
            raise MemoryFault("null-dereference", "pointer does not reference a heap buffer")
        return value.target

    def _builtin_store8(self, expression: ast.Call, frame: Frame) -> Value:
        buffer = self._buffer_of(self._eval(expression.args[0], frame))
        index = self._eval(expression.args[1], frame)
        value = self._eval(expression.args[2], frame)
        if not isinstance(index, TaintedValue) or not isinstance(value, TaintedValue):
            raise VMError("store8 requires integer index and value")
        # Index with the true (unwrapped) value: a size computation that
        # overflowed produces writes beyond the wrapped allocation, which is
        # exactly the out-of-bounds behaviour the paper's recipients exhibit.
        index_int = index.true_value if index.true_value is not None else index.as_int
        buffer.store(index_int, self._convert_int(value, U8))
        return make_value(0, I32)

    def _builtin_load8(self, expression: ast.Call, frame: Frame) -> Value:
        buffer = self._buffer_of(self._eval(expression.args[0], frame))
        index = self._eval(expression.args[1], frame)
        if not isinstance(index, TaintedValue):
            raise VMError("load8 requires an integer index")
        return self._note(frame, buffer.load(index.as_int))


def run_program(
    program: Program,
    data: bytes,
    field_map: Optional[FieldMap] = None,
    hooks: Optional[Hooks] = None,
    config: Optional[VMConfig] = None,
) -> RunResult:
    """Convenience wrapper: build a VM and run ``program`` on ``data``."""
    return VM(program, config=config).run(data, field_map=field_map, hooks=hooks)
