"""MicroC source renderer (AST -> source text).

Used to display patched recipient programs (the reproduction's analogue of the
source-level patches CP generates) and by tests that check parser/printer
round trips.
"""

from __future__ import annotations

from . import ast


_INDENT = "    "


def render_program(unit: ast.TranslationUnit) -> str:
    """Render a whole translation unit back to MicroC source."""
    parts: list[str] = []
    for struct in unit.structs:
        parts.append(_render_struct(struct))
    if unit.structs:
        parts.append("")
    for declaration in unit.globals:
        initialiser = f" = {render_expression(declaration.init)}" if declaration.init else ""
        parts.append(f"{declaration.type_ref} {declaration.name}{initialiser};")
    if unit.globals:
        parts.append("")
    for function in unit.functions:
        parts.append(_render_function(function))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def _render_struct(struct: ast.StructDecl) -> str:
    lines = [f"struct {struct.name} {{"]
    for field in struct.fields:
        lines.append(f"{_INDENT}{field.type_ref} {field.name};")
    lines.append("};")
    return "\n".join(lines)


def _render_function(function: ast.FunctionDecl) -> str:
    parameters = ", ".join(f"{param.type_ref} {param.name}" for param in function.parameters)
    header = f"{function.return_type} {function.name}({parameters}) {{"
    body = _render_block(function.body, 1)
    return "\n".join([header, body, "}"])


def _render_block(block: ast.Block, depth: int) -> str:
    lines = [render_statement(statement, depth) for statement in block.statements]
    return "\n".join(lines)


def render_statement(statement: ast.Statement, depth: int = 0) -> str:
    """Render one statement at the given indentation depth."""
    pad = _INDENT * depth

    if isinstance(statement, ast.VarDecl):
        initialiser = f" = {render_expression(statement.init)}" if statement.init else ""
        return f"{pad}{statement.type_ref} {statement.name}{initialiser};"

    if isinstance(statement, ast.Assign):
        return f"{pad}{render_expression(statement.target)} = {render_expression(statement.value)};"

    if isinstance(statement, ast.If):
        lines = [f"{pad}if ({render_expression(statement.condition)}) {{"]
        lines.append(_render_block(statement.then_block, depth + 1))
        if statement.else_block is not None:
            lines.append(f"{pad}}} else {{")
            lines.append(_render_block(statement.else_block, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(line for line in lines if line)

    if isinstance(statement, ast.While):
        lines = [f"{pad}while ({render_expression(statement.condition)}) {{"]
        lines.append(_render_block(statement.body, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(line for line in lines if line)

    if isinstance(statement, ast.Return):
        if statement.value is None:
            return f"{pad}return;"
        return f"{pad}return {render_expression(statement.value)};"

    if isinstance(statement, ast.ExprStmt):
        return f"{pad}{render_expression(statement.expression)};"

    raise TypeError(f"cannot render statement {type(statement).__name__}")


def render_expression(expression: ast.Expression) -> str:
    """Render an expression with explicit parentheses (no precedence games)."""
    if isinstance(expression, ast.IntLiteral):
        return str(expression.value)
    if isinstance(expression, ast.Name):
        return expression.name
    if isinstance(expression, ast.FieldAccess):
        separator = "->" if expression.arrow else "."
        return f"{render_expression(expression.base)}{separator}{expression.field_name}"
    if isinstance(expression, ast.Unary):
        return f"{expression.op}({render_expression(expression.operand)})"
    if isinstance(expression, ast.Binary):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, ast.Cast):
        return f"(({expression.target}) {render_expression(expression.operand)})"
    if isinstance(expression, ast.Call):
        if expression.callee.startswith("__sizeof:"):
            return f"sizeof({expression.callee.split(':', 1)[1]})"
        arguments = ", ".join(render_expression(argument) for argument in expression.args)
        return f"{expression.callee}({arguments})"
    if isinstance(expression, ast.AddressOf):
        return f"&{render_expression(expression.operand)}"
    if isinstance(expression, ast.Deref):
        return f"*({render_expression(expression.operand)})"
    raise TypeError(f"cannot render expression {type(expression).__name__}")
