"""MicroC: the application substrate of the CP reproduction.

The original Code Phage analyses real C applications compiled to x86 binaries.
This package provides the equivalent substrate for a pure-Python
reproduction: a small C-like language (lexer, parser, type checker), a
taint/symbolic-tracking virtual machine standing in for the Valgrind-based
instrumentation, per-program-point debug information, and a source-level
patcher used to insert transferred checks.
"""

from . import ast
from .checker import (
    BUILTIN_SIGNATURES,
    CheckError,
    FunctionSignature,
    Program,
    check_program,
    compile_program,
)
from .debuginfo import DebugInfo, ScopeVariable
from .lexer import LexError, Token, TokenKind, tokenize
from .memory import (
    Buffer,
    Cell,
    MemoryFault,
    Pointer,
    StructInstance,
    TaintedValue,
    instantiate,
    make_value,
    new_cell,
    null_pointer,
)
from .parser import ParseError, parse_expression, parse_program
from .patcher import (
    PatchAction,
    PatchError,
    PatchedProgram,
    SourcePatch,
    apply_patch,
    render_patch_preview,
)
from .printer import render_expression, render_program, render_statement
from .trace import (
    AllocationRecord,
    BranchRecord,
    DivisionRecord,
    ErrorKind,
    ErrorReport,
    Hooks,
    NullHooks,
    RunResult,
    RunStatus,
)
from .types import (
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructField,
    StructTable,
    StructType,
    Type,
    TypeError_,
    U8,
    U16,
    U32,
    U64,
    VOID,
    VoidType,
    assignable,
    integer_type,
    promote,
)
from .vm import (
    VM,
    Frame,
    VMConfig,
    VMError,
    default_execution_tier,
    run_program,
    set_default_execution_tier,
)

# Imported eagerly (not just for the re-exports): the compiled tier is the
# default execution path, and lazy first-use import would bill the module's
# (sizeable) bytecode compilation to whichever pipeline stage ran first —
# with PYTHONDONTWRITEBYTECODE set there is no .pyc cache to absorb it.
from .compile import (
    clear_compile_cache,
    compile_cache_info,
    program_digest,
    run_compiled,
)
from .compile import compile_program as compile_bytecode
from .memory import ArenaBuffer

__all__ = [
    "AllocationRecord",
    "BranchRecord",
    "Buffer",
    "BUILTIN_SIGNATURES",
    "Cell",
    "CheckError",
    "DebugInfo",
    "DivisionRecord",
    "ErrorKind",
    "ErrorReport",
    "Frame",
    "FunctionSignature",
    "Hooks",
    "IntType",
    "LexError",
    "MemoryFault",
    "NullHooks",
    "ParseError",
    "PatchAction",
    "PatchError",
    "PatchedProgram",
    "Pointer",
    "PointerType",
    "Program",
    "RunResult",
    "RunStatus",
    "ScopeVariable",
    "SourcePatch",
    "StructField",
    "StructInstance",
    "StructTable",
    "StructType",
    "TaintedValue",
    "Token",
    "TokenKind",
    "Type",
    "TypeError_",
    "VM",
    "VMConfig",
    "VMError",
    "VoidType",
    "apply_patch",
    "assignable",
    "ast",
    "ArenaBuffer",
    "check_program",
    "clear_compile_cache",
    "compile_bytecode",
    "compile_cache_info",
    "compile_program",
    "default_execution_tier",
    "instantiate",
    "integer_type",
    "make_value",
    "new_cell",
    "null_pointer",
    "parse_expression",
    "parse_program",
    "promote",
    "render_expression",
    "render_patch_preview",
    "render_program",
    "render_statement",
    "program_digest",
    "run_compiled",
    "run_program",
    "set_default_execution_tier",
    "tokenize",
    "I8",
    "I16",
    "I32",
    "I64",
    "U8",
    "U16",
    "U32",
    "U64",
    "VOID",
]
