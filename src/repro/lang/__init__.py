"""MicroC: the application substrate of the CP reproduction.

The original Code Phage analyses real C applications compiled to x86 binaries.
This package provides the equivalent substrate for a pure-Python
reproduction: a small C-like language (lexer, parser, type checker), a
taint/symbolic-tracking virtual machine standing in for the Valgrind-based
instrumentation, per-program-point debug information, and a source-level
patcher used to insert transferred checks.
"""

from . import ast
from .checker import (
    BUILTIN_SIGNATURES,
    CheckError,
    FunctionSignature,
    Program,
    check_program,
    compile_program,
)
from .debuginfo import DebugInfo, ScopeVariable
from .lexer import LexError, Token, TokenKind, tokenize
from .memory import (
    Buffer,
    Cell,
    MemoryFault,
    Pointer,
    StructInstance,
    TaintedValue,
    instantiate,
    make_value,
    new_cell,
    null_pointer,
)
from .parser import ParseError, parse_expression, parse_program
from .patcher import (
    PatchAction,
    PatchError,
    PatchedProgram,
    SourcePatch,
    apply_patch,
    render_patch_preview,
)
from .printer import render_expression, render_program, render_statement
from .trace import (
    AllocationRecord,
    BranchRecord,
    DivisionRecord,
    ErrorKind,
    ErrorReport,
    Hooks,
    NullHooks,
    RunResult,
    RunStatus,
)
from .types import (
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructField,
    StructTable,
    StructType,
    Type,
    TypeError_,
    U8,
    U16,
    U32,
    U64,
    VOID,
    VoidType,
    assignable,
    integer_type,
    promote,
)
from .vm import VM, Frame, VMConfig, VMError, run_program

__all__ = [
    "AllocationRecord",
    "BranchRecord",
    "Buffer",
    "BUILTIN_SIGNATURES",
    "Cell",
    "CheckError",
    "DebugInfo",
    "DivisionRecord",
    "ErrorKind",
    "ErrorReport",
    "Frame",
    "FunctionSignature",
    "Hooks",
    "IntType",
    "LexError",
    "MemoryFault",
    "NullHooks",
    "ParseError",
    "PatchAction",
    "PatchError",
    "PatchedProgram",
    "Pointer",
    "PointerType",
    "Program",
    "RunResult",
    "RunStatus",
    "ScopeVariable",
    "SourcePatch",
    "StructField",
    "StructInstance",
    "StructTable",
    "StructType",
    "TaintedValue",
    "Token",
    "TokenKind",
    "Type",
    "TypeError_",
    "VM",
    "VMConfig",
    "VMError",
    "VoidType",
    "apply_patch",
    "assignable",
    "ast",
    "check_program",
    "compile_program",
    "instantiate",
    "integer_type",
    "make_value",
    "new_cell",
    "null_pointer",
    "parse_expression",
    "parse_program",
    "promote",
    "render_expression",
    "render_patch_preview",
    "render_program",
    "render_statement",
    "run_program",
    "tokenize",
    "I8",
    "I16",
    "I32",
    "I64",
    "U8",
    "U16",
    "U32",
    "U64",
    "VOID",
]
