"""MicroC abstract syntax tree.

Every node carries a ``node_id`` (unique within a parsed program, assigned in
source order by the parser) and a source ``line``.  Statement node ids double
as *program points*: candidate patch insertion points are identified by the id
of the statement after which the check is inserted, and the patcher
(:mod:`repro.lang.patcher`) locates statements by id when splicing a patch
into the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Node:
    """Base class for all AST nodes."""

    node_id: int = field(default=-1, compare=False)
    line: int = field(default=0, compare=False)


# ---------------------------------------------------------------------------
# Type references (resolved to repro.lang.types types by the checker)
# ---------------------------------------------------------------------------


@dataclass
class TypeRef(Node):
    """A syntactic type: base name, struct flag, and pointer depth."""

    name: str = ""
    is_struct: bool = False
    pointer_depth: int = 0

    def __str__(self) -> str:
        base = f"struct {self.name}" if self.is_struct else self.name
        return base + "*" * self.pointer_depth


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression(Node):
    """Base class for expressions; ``ctype`` is annotated by the checker."""

    ctype: object = field(default=None, compare=False, repr=False)

    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class IntLiteral(Expression):
    """An integer literal (decimal or hexadecimal in source)."""

    value: int = 0


@dataclass
class Name(Expression):
    """A reference to a variable (local, parameter, or global)."""

    name: str = ""


@dataclass
class FieldAccess(Expression):
    """``base.field`` (``arrow`` False) or ``base->field`` (``arrow`` True)."""

    base: Expression = None  # type: ignore[assignment]
    field_name: str = ""
    arrow: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.base,)


@dataclass
class Unary(Expression):
    """Unary operator: ``-``, ``~``, or ``!``."""

    op: str = "-"
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass
class Binary(Expression):
    """Binary operator (arithmetic, bitwise, comparison, or logical)."""

    op: str = "+"
    left: Expression = None  # type: ignore[assignment]
    right: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass
class Cast(Expression):
    """A C-style cast ``(type) expr``."""

    target: TypeRef = None  # type: ignore[assignment]
    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass
class Call(Expression):
    """A call to a user function or builtin."""

    callee: str = ""
    args: tuple[Expression, ...] = ()

    def children(self) -> tuple[Expression, ...]:
        return tuple(self.args)


@dataclass
class AddressOf(Expression):
    """``&lvalue`` — used to pass structs by reference."""

    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass
class Deref(Expression):
    """``*pointer``."""

    operand: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for statements."""


@dataclass
class Block(Node):
    """A brace-delimited list of statements."""

    statements: list[Statement] = field(default_factory=list)

    def walk_statements(self) -> Iterator[Statement]:
        for statement in self.statements:
            yield statement
            yield from _walk_nested(statement)


def _walk_nested(statement: Statement) -> Iterator[Statement]:
    if isinstance(statement, If):
        yield from statement.then_block.walk_statements()
        if statement.else_block is not None:
            yield from statement.else_block.walk_statements()
    elif isinstance(statement, While):
        yield from statement.body.walk_statements()


@dataclass
class VarDecl(Statement):
    """A local variable declaration with optional initialiser."""

    type_ref: TypeRef = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expression] = None


@dataclass
class Assign(Statement):
    """An assignment to an lvalue (name, field access, or dereference)."""

    target: Expression = None  # type: ignore[assignment]
    value: Expression = None  # type: ignore[assignment]


@dataclass
class If(Statement):
    """An if/else statement."""

    condition: Expression = None  # type: ignore[assignment]
    then_block: Block = None  # type: ignore[assignment]
    else_block: Optional[Block] = None


@dataclass
class While(Statement):
    """A while loop."""

    condition: Expression = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class Return(Statement):
    """A return statement with optional value."""

    value: Optional[Expression] = None


@dataclass
class ExprStmt(Statement):
    """An expression evaluated for its side effects (typically a call)."""

    expression: Expression = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class StructFieldDecl(Node):
    """One field of a struct declaration."""

    type_ref: TypeRef = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class StructDecl(Node):
    """A struct type declaration."""

    name: str = ""
    fields: list[StructFieldDecl] = field(default_factory=list)


@dataclass
class Parameter(Node):
    """A function parameter."""

    type_ref: TypeRef = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class FunctionDecl(Node):
    """A function definition."""

    return_type: TypeRef = None  # type: ignore[assignment]
    name: str = ""
    parameters: list[Parameter] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class GlobalVarDecl(Node):
    """A global variable declaration with optional constant initialiser."""

    type_ref: TypeRef = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expression] = None


@dataclass
class TranslationUnit(Node):
    """A whole MicroC program: structs, globals, and functions."""

    structs: list[StructDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    source: str = ""
    name: str = ""

    def function(self, name: str) -> FunctionDecl:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        return any(function.name == name for function in self.functions)

    def all_statements(self) -> Iterator[Statement]:
        for function in self.functions:
            yield from function.body.walk_statements()

    def statement_by_id(self, node_id: int) -> Statement:
        for statement in self.all_statements():
            if statement.node_id == node_id:
                return statement
        raise KeyError(f"no statement with node id {node_id}")

    def function_of_statement(self, node_id: int) -> FunctionDecl:
        for function in self.functions:
            for statement in function.body.walk_statements():
                if statement.node_id == node_id:
                    return function
        raise KeyError(f"no statement with node id {node_id}")
