"""Source-level patch insertion for MicroC programs.

CP generates a candidate patch as "an if statement inserted at the insertion
point": the translated check becomes the condition and the body either exits
the application (``exit(-1)``), or — for the divide-by-zero alternate strategy
of §4.5 — returns zero from the enclosing function.

The patcher works the way CP does with source-level patches: it re-parses the
recipient's source (so statement node ids are reproducible), splices the patch
statement immediately after the insertion-point statement, and renders the
patched program back to source.  Recompiling the result is then just running
the MicroC checker again.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from . import ast
from .checker import Program, compile_program
from .parser import parse_expression, parse_program
from .printer import render_statement


class PatchError(Exception):
    """Raised when a patch cannot be constructed or applied."""


#: Parsed-unit cache for :func:`apply_patch`, keyed by (name, source).  A
#: campaign attempts many candidate patches against the same recipient;
#: re-parsing the unpatched source per attempt dominated the patcher's cost.
#: ``apply_patch`` mutates the cached unit only by inserting one statement,
#: which it removes again after rendering, so cached units stay pristine.
#: Content-addressed by the full source string: a rewritten recipient is a
#: different key, so no invalidation hook is needed.
_UNIT_CACHE: "OrderedDict[tuple[str, str], ast.TranslationUnit]" = OrderedDict()
_UNIT_CACHE_CAPACITY = 32


def _parsed_unit(source: str, name: str) -> ast.TranslationUnit:
    key = (name, source)
    unit = _UNIT_CACHE.get(key)
    if unit is None:
        unit = parse_program(source, name=name)
        _UNIT_CACHE[key] = unit
        if len(_UNIT_CACHE) > _UNIT_CACHE_CAPACITY:
            _UNIT_CACHE.popitem(last=False)
    else:
        _UNIT_CACHE.move_to_end(key)
    return unit


class PatchAction(enum.Enum):
    """What the inserted check does when the condition fires."""

    EXIT = "exit"            # exit(-1): reject the input before the error occurs
    RETURN_ZERO = "return0"  # return 0 from the enclosing function (§4.5 strategy)


@dataclass(frozen=True)
class SourcePatch:
    """A source patch: where to insert, what to check, what to do."""

    insertion_statement_id: int
    condition_source: str
    action: PatchAction = PatchAction.EXIT
    description: str = ""

    def render(self) -> str:
        """The patch as it would appear in the recipient source."""
        if self.action is PatchAction.EXIT:
            body = "exit(-1);"
        else:
            body = "return 0;"
        return f"if ({self.condition_source}) {{ {body} }}"


@dataclass
class PatchedProgram:
    """Result of applying a patch: new source, recompiled program, location info."""

    source: str
    program: Program
    patch: SourcePatch
    function: str
    insertion_line: int


def _find_parent_block(unit: ast.TranslationUnit, statement_id: int) -> tuple[ast.Block, int, str]:
    """Locate the block containing ``statement_id`` and its index within it."""
    for function in unit.functions:
        blocks = [function.body]
        while blocks:
            block = blocks.pop()
            for index, statement in enumerate(block.statements):
                if statement.node_id == statement_id:
                    return block, index, function.name
                if isinstance(statement, ast.If):
                    blocks.append(statement.then_block)
                    if statement.else_block is not None:
                        blocks.append(statement.else_block)
                elif isinstance(statement, ast.While):
                    blocks.append(statement.body)
    raise PatchError(f"no statement with node id {statement_id} in program")


def _max_node_id(unit: ast.TranslationUnit) -> int:
    highest = unit.node_id
    stack: list[ast.Node] = [unit]
    for function in unit.functions:
        stack.append(function)
        stack.append(function.body)
    for struct in unit.structs:
        stack.append(struct)
    for declaration in unit.globals:
        stack.append(declaration)
    # Walk statements/expressions for ids.
    for statement in unit.all_statements():
        highest = max(highest, statement.node_id)
        for expression_field in ("condition", "value", "expression", "init", "target"):
            expression = getattr(statement, expression_field, None)
            if isinstance(expression, ast.Expression):
                for node in expression.walk():
                    highest = max(highest, node.node_id)
    return highest


def _build_patch_statement(
    patch: SourcePatch, next_id: int, line: int
) -> tuple[ast.Statement, int]:
    """Construct the patch's if-statement AST with fresh node ids."""
    condition = parse_expression(patch.condition_source)
    # Re-number the freshly parsed expression so ids do not collide.
    for node in condition.walk():
        node.node_id = next_id
        node.line = line
        next_id += 1

    if patch.action is PatchAction.EXIT:
        exit_call = ast.Call(callee="exit", args=(ast.IntLiteral(value=-1 & 0xFFFFFFFF),))
        # Render -1 literally: use a unary minus over 1 for readability.
        exit_call = ast.Call(
            callee="exit", args=(ast.Unary(op="-", operand=ast.IntLiteral(value=1)),)
        )
        body_statement: ast.Statement = ast.ExprStmt(expression=exit_call)
    else:
        body_statement = ast.Return(value=ast.IntLiteral(value=0))

    for node in _all_patch_nodes(body_statement):
        node.node_id = next_id
        node.line = line
        next_id += 1

    then_block = ast.Block(statements=[body_statement])
    then_block.node_id = next_id
    then_block.line = line
    next_id += 1

    if_statement = ast.If(condition=condition, then_block=then_block, else_block=None)
    if_statement.node_id = next_id
    if_statement.line = line
    next_id += 1
    return if_statement, next_id


def _all_patch_nodes(statement: ast.Statement) -> list[ast.Node]:
    nodes: list[ast.Node] = [statement]
    if isinstance(statement, ast.ExprStmt):
        nodes.extend(statement.expression.walk())
    elif isinstance(statement, ast.Return) and statement.value is not None:
        nodes.extend(statement.value.walk())
    return nodes


def apply_patch(source: str, patch: SourcePatch, program_name: str = "") -> PatchedProgram:
    """Apply ``patch`` to MicroC ``source`` and recompile the result.

    Raises :class:`PatchError` if the insertion point does not exist or the
    patched program fails to recompile (CP's first validation step).
    """
    unit = _parsed_unit(source, program_name or "<patched>")
    block, index, function_name = _find_parent_block(unit, patch.insertion_statement_id)
    insertion_line = block.statements[index].line

    next_id = _max_node_id(unit) + 1000
    patch_statement, _ = _build_patch_statement(patch, next_id, insertion_line)
    block.statements.insert(index + 1, patch_statement)

    from .printer import render_program

    try:
        new_source = render_program(unit)
    finally:
        # Restore the cached unit to its unpatched shape.
        del block.statements[index + 1]
    try:
        program = compile_program(new_source, name=(program_name or "patched"))
    except Exception as error:  # compilation failure -> validation failure
        raise PatchError(f"patched program failed to recompile: {error}") from error

    return PatchedProgram(
        source=new_source,
        program=program,
        patch=patch,
        function=function_name,
        insertion_line=insertion_line,
    )


def render_patch_preview(source: str, patch: SourcePatch) -> str:
    """A short human-readable preview of the patch in context (for reports)."""
    unit = _parsed_unit(source, "<preview>")
    block, index, function_name = _find_parent_block(unit, patch.insertion_statement_id)
    anchor = render_statement(block.statements[index]).strip()
    return (
        f"in {function_name}, after `{anchor}`:\n"
        f"    {patch.render()}"
    )
