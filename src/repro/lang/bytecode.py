"""Compiled execution tier for the MicroC VM: runtime state and dispatch.

:mod:`repro.lang.compile` flattens a checked
:class:`~repro.lang.checker.Program` into the form executed here: per
function, a compact linear statement bytecode with explicit jump targets,
and per expression, a closure specialised at compile time on the operator,
the checker's static types, and resolved variable slots.  This module owns
everything that happens at *run* time — the per-run :class:`Runtime` state,
the tight dispatch loop over statement instructions, function invocation,
and the shared value-conversion helpers.

Semantics are bit-for-bit those of the tree-walking interpreter in
:mod:`repro.lang.vm`, including step accounting (one step per statement and
per evaluated expression node), error attribution (the innermost executing
statement at the time of the fault), record ordering, and the exact wording
of every error message.  ``tests/lang/test_vm_differential.py`` holds the
proof obligation: both tiers must agree on outputs, traces, heap state, and
verdicts for generated programs across every error class.

Trace side effects are batched: instead of constructing record dataclasses
(and simplifying branch conditions) inside the dispatch loop, the runtime
appends raw tuples which :mod:`repro.lang.trace` materialises once after
the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..symbolic import builder
from ..symbolic.expr import Constant
from ..symbolic.simplify import simplify
from .memory import (
    ArenaBuffer,
    Buffer,
    Cell,
    MemoryFault,
    Pointer,
    StructInstance,
    TaintedValue,
    U8_CONSTANTS,
    fast_value,
    make_value,
    null_pointer,
)
from .trace import (
    ErrorKind,
    ErrorReport,
    RunResult,
    materialize_allocations,
    materialize_branches,
    materialize_divisions,
)
from .types import I32, IntType, PointerType, StructType
from .vm import VMError, _ErrorSignal, _ExitSignal

# -- statement opcodes --------------------------------------------------------------
#
# Each instruction is a tuple whose first element is the opcode.  The layouts:
#
#   (OP_SIMPLE,   statement_fn, marker)              VarDecl / Assign / ExprStmt
#   (OP_IF,       condition_fn, marker, false_pc)    if: step, eval, record, jump
#   (OP_JUMP,     target_pc)                         end of a then-block
#   (OP_MARK,     marker)                            while entry: step + current
#   (OP_LOOPCOND, condition_fn, marker, exit_pc)     eval + record, no step
#   (OP_LOOPSTEP, condition_pc)                      end of loop body: step, jump
#   (OP_RET,      value_fn_or_None, marker)          return from the function
#
# ``marker`` is the precomputed ``(function, statement_id, line)`` tuple used
# for error attribution (``Runtime.current``) and branch records.

OP_SIMPLE = 0
OP_IF = 1
OP_JUMP = 2
OP_MARK = 3
OP_LOOPCOND = 4
OP_LOOPSTEP = 5
OP_RET = 6
OP_OBS = 7   # observed tier only: post-statement observation point

#: MemoryFault kind -> ErrorKind, mirroring VM._exec_statement (unknown kinds
#: such as "bad-field" fall back to NULL_DEREFERENCE there too).
FAULT_KINDS = {
    "out-of-bounds-write": ErrorKind.OUT_OF_BOUNDS_WRITE,
    "out-of-bounds-read": ErrorKind.OUT_OF_BOUNDS_READ,
    "null-dereference": ErrorKind.NULL_DEREFERENCE,
    "divide-by-zero": ErrorKind.DIVIDE_BY_ZERO,
}

#: Interned results for expressions that produce untainted i32 truth values.
ZERO_I32 = make_value(0, I32)
ONE_I32 = make_value(1, I32)

_U8_ZERO = U8_CONSTANTS[0]


@dataclass
class CompiledFunction:
    """One function flattened to linear statement bytecode."""

    name: str
    nlocals: int
    code: tuple
    param_stores: tuple  # per parameter: (rt, L, argument) -> None
    return_conv: Optional[tuple[int, bool]]  # (width, signed) for int returns
    entry_current: tuple  # (name, -1, 0): error marker before any statement runs
    local_names: tuple


@dataclass
class CompiledProgram:
    """A whole program compiled for the bytecode tier.

    Holds closures, so instances are intentionally *never* attached to
    :class:`~repro.lang.checker.Program`, VMs, or results — anything that
    crosses a process boundary stays picklable, and the compile cache in
    :mod:`repro.lang.compile` is shared with fork-started workers purely by
    address-space inheritance.
    """

    digest: str
    functions: dict[str, CompiledFunction]
    globals_plan: tuple  # per global: (name, make_cell())
    global_index: dict[str, int]


class Runtime:
    """Mutable per-run state shared by every compiled closure.

    Collapses the interpreter's ``VM`` + ``Frame`` + ``_InputStream`` trio
    into one slotted object: configuration is read at run time (so it is not
    a compile-cache dimension), the input stream is inlined, and trace side
    effects accumulate as raw tuples.
    """

    __slots__ = (
        "steps",
        "max_steps",
        "current",
        "track",
        "simplify_options",
        "detect_overflow",
        "max_heap_bytes",
        "heap_allocated",
        "data",
        "data_len",
        "cursor",
        "field_map",
        "fields_read",
        "output",
        "raw_branches",
        "raw_allocations",
        "raw_divisions",
        "heap",
        "gslots",
        "observer",
        "frame_fields",
    )

    def __init__(self, config, data: bytes, field_map) -> None:
        self.steps = 0
        self.max_steps = config.max_steps
        # Matches the interpreter's synthetic frame for errors raised before
        # any statement has executed in the current activation.
        self.current = ("<entry>", -1, 0)
        self.track = config.track_symbolic
        self.simplify_options = config.simplify_options
        self.detect_overflow = config.detect_allocation_overflow
        self.max_heap_bytes = config.max_heap_bytes
        self.heap_allocated = 0
        self.data = data
        self.data_len = len(data)
        self.cursor = 0
        self.field_map = field_map
        self.fields_read: set = set()
        self.output: list = []
        self.raw_branches: list = []
        self.raw_allocations: list = []
        self.raw_divisions: list = []
        self.heap: list = []
        self.gslots: list = []
        # Observed tier (insertion-point analysis): a callback invoked at
        # OP_OBS instructions, and the per-activation set of input fields
        # read so far — the compiled counterpart of Frame.fields_accessed.
        self.observer = None
        self.frame_fields: set = set()

    # -- errors ------------------------------------------------------------------

    def error(self, kind: ErrorKind, message: str) -> None:
        function, statement_id, line = self.current
        raise _ErrorSignal(
            ErrorReport(
                kind=kind,
                message=message,
                function=function,
                statement_id=statement_id,
                line=line,
            )
        )

    def exhausted(self) -> None:
        self.error(
            ErrorKind.RESOURCE_EXHAUSTED,
            f"execution exceeded {self.max_steps} steps",
        )

    def memory_fault(self, fault: MemoryFault) -> None:
        self.error(FAULT_KINDS.get(fault.kind, ErrorKind.NULL_DEREFERENCE), fault.message)

    # -- input stream -------------------------------------------------------------

    def read_byte(self) -> TaintedValue:
        cursor = self.cursor
        if cursor >= self.data_len:
            # Reading past the end yields untainted zero bytes (files are
            # implicitly zero-padded); applications check lengths themselves.
            self.cursor = cursor + 1
            return _U8_ZERO
        value = self.data[cursor]
        self.cursor = cursor + 1
        if self.track:
            symbolic = self.field_map.symbolic_byte(cursor)
            self.fields_read.update(symbolic.fields())
            return fast_value(value, 8, False, symbolic, value)
        return U8_CONSTANTS[value]

    def read_multi(self, size: int, big_endian: bool) -> TaintedValue:
        byte_values = [self.read_byte() for _ in range(size)]
        ordered = byte_values if big_endian else byte_values[::-1]
        value = 0
        for byte in ordered:
            value = (value << 8) | byte.value
        symbolic = None
        for byte in byte_values:
            if byte.symbolic is not None:
                parts = [
                    b.symbolic
                    if b.symbolic is not None
                    else Constant(width=8, value=b.value)
                    for b in ordered
                ]
                symbolic = simplify(builder.concat(*parts), self.simplify_options)
                break
        return fast_value(value, 16 if size == 2 else 32, False, symbolic, value)

    # -- result ------------------------------------------------------------------

    def finalize(self, result: RunResult) -> None:
        """Materialise the batched raw trace tuples into record dataclasses."""
        result.branches.extend(
            materialize_branches(self.raw_branches, self.simplify_options)
        )
        result.allocations.extend(materialize_allocations(self.raw_allocations))
        result.divisions.extend(materialize_divisions(self.raw_divisions))


# -- value helpers (exact replicas of the interpreter's conversions) -----------------


def convert_int(
    rt: Runtime, value: TaintedValue, width: int, signed: bool, preserve_true: bool
) -> TaintedValue:
    """Replica of ``VM._convert_int`` against a statically known target type."""
    if value.width == width and value.signed == signed:
        # The interpreter rebuilds an identical frozen value here; reusing the
        # operand is observationally equivalent and allocation-free.
        return value
    raw = value.as_int
    symbolic = value.symbolic
    if symbolic is not None:
        if width > value.width:
            symbolic = (
                builder.sext(symbolic, width)
                if value.signed
                else builder.zext(symbolic, width)
            )
        elif width < value.width:
            symbolic = builder.shrink(symbolic, width)
        symbolic = simplify(symbolic, rt.simplify_options)
    masked = raw & ((1 << width) - 1)
    if preserve_true or width >= value.width:
        # Widening (and explicit casts) carry the true value along so that
        # later overflow checks see the full computation.
        true_value = value.true_value
    else:
        true_value = (
            masked - (1 << width)
            if signed and masked >= (1 << (width - 1))
            else masked
        )
    return fast_value(masked, width, signed, symbolic, true_value)


def convert_for_store(rt: Runtime, value, target) -> object:
    """Replica of ``VM._convert_for_store`` for a runtime-determined cell type."""
    if isinstance(target, IntType):
        if not isinstance(value, TaintedValue):
            raise VMError(f"cannot store {type(value).__name__} into integer cell")
        return convert_int(rt, value, target.width, target.signed, False)
    if isinstance(target, PointerType):
        if isinstance(value, Pointer):
            return Pointer(target=value.target, pointee_type=target.pointee)
        if isinstance(value, TaintedValue) and value.value == 0:
            return null_pointer(target.pointee)
        raise VMError("cannot store a non-pointer into a pointer cell")
    if isinstance(target, StructType):
        if isinstance(value, StructInstance):
            return value
        raise VMError("cannot store a non-struct into a struct cell")
    raise VMError(f"cannot store into cell of type {target}")


def deref_cell(pointer) -> Cell:
    """Replica of ``VM._deref``."""
    if pointer.__class__ is not Pointer:
        raise VMError("dereference of a non-pointer value")
    target = pointer.target
    if target is None:
        raise MemoryFault("null-dereference", "null pointer dereference")
    if isinstance(target, Buffer):
        raise MemoryFault(
            "null-dereference", "cannot dereference a heap buffer without an index"
        )
    return target


def buffer_of(value) -> Buffer:
    """Replica of ``VM._buffer_of``."""
    if value.__class__ is not Pointer:
        raise VMError("expected a buffer pointer")
    target = value.target
    if target is None:
        raise MemoryFault("null-dereference", "null buffer pointer")
    if not isinstance(target, Buffer):
        raise MemoryFault(
            "null-dereference", "pointer does not reference a heap buffer"
        )
    return target


def truth_of(value) -> tuple[bool, object]:
    """Replica of ``VM._truth_of`` (the symbolic half is un-simplified)."""
    cls = value.__class__
    if cls is Pointer:
        return (value.target is not None), None
    if cls is TaintedValue:
        symbolic = None
        if value.symbolic is not None:
            symbolic = builder.is_nonzero(value.symbolic)
        return value.value != 0, symbolic
    raise VMError("invalid truth operand")


def record_branch(rt: Runtime, marker: tuple, condition) -> bool:
    """Replica of ``VM._record_branch`` with the record batched as a tuple.

    The branch-condition ``is_nonzero``/``simplify`` work is deferred to
    materialisation time along with the dataclass construction.
    """
    cls = condition.__class__
    if cls is TaintedValue:
        value = condition.value
        taken = value != 0
        rt.raw_branches.append((marker, taken, value, condition.symbolic))
        return taken
    if cls is Pointer:
        taken = condition.target is not None
        rt.raw_branches.append((marker, taken, 1 if taken else 0, None))
        return taken
    raise VMError("invalid branch condition value")


# -- dispatch -----------------------------------------------------------------------


def invoke(rt: Runtime, cf: CompiledFunction, arguments: tuple) -> object:
    """Call a compiled function: bind parameters, execute, convert the return."""
    L = [None] * cf.nlocals
    # zip semantics match the interpreter's parameter binding loop.
    for store, argument in zip(cf.param_stores, arguments):
        store(rt, L, argument)
    saved = rt.current
    saved_fields = rt.frame_fields
    rt.current = cf.entry_current
    rt.frame_fields = set()
    try:
        value = execute(rt, cf.code, L)
    finally:
        rt.current = saved
        rt.frame_fields = saved_fields
    if value is None:
        # Fall-through and bare `return;` both yield the default i32 zero.
        return ZERO_I32
    conv = cf.return_conv
    if conv is not None and value.__class__ is TaintedValue:
        width, signed = conv
        if value.width != width or value.signed != signed:
            return convert_int(rt, value, width, signed, False)
    return value


def execute(rt: Runtime, code: tuple, L: list) -> object:
    """The dispatch loop: run one function activation to completion.

    Returns the value of an executed ``return`` statement (``None`` for a
    bare return or fall-through).  Memory faults escape expression closures
    and are converted to error reports here, attributed to the innermost
    executing statement — exactly like ``VM._exec_statement``.
    """
    pc = 0
    size = len(code)
    while pc < size:
        ins = code[pc]
        op = ins[0]
        try:
            if op == OP_SIMPLE:
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                rt.current = ins[2]
                ins[1](rt, L)
                pc += 1
            elif op == OP_IF:
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                marker = ins[2]
                rt.current = marker
                if record_branch(rt, marker, ins[1](rt, L)):
                    pc += 1
                else:
                    pc = ins[3]
            elif op == OP_LOOPCOND:
                if record_branch(rt, ins[2], ins[1](rt, L)):
                    pc += 1
                else:
                    pc = ins[3]
            elif op == OP_LOOPSTEP:
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                pc = ins[1]
            elif op == OP_JUMP:
                pc = ins[1]
            elif op == OP_MARK:
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                rt.current = ins[1]
                pc += 1
            elif op == OP_RET:
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                rt.current = ins[2]
                value_fn = ins[1]
                return value_fn(rt, L) if value_fn is not None else None
            elif op == OP_OBS:
                # Post-statement observation (observed tier).  No step tick:
                # interpreter hooks do not consume steps.  Return statements
                # never emit OP_OBS, and faults/exits skip it by escaping the
                # loop — matching the interpreter's post-dispatch hook call.
                observer = rt.observer
                if observer is not None:
                    observer(rt, ins[1], ins[2], L)
                pc += 1
            else:  # pragma: no cover - compiler invariant
                raise VMError(f"unknown opcode {op}")
        except MemoryFault as fault:
            rt.memory_fault(fault)
    return None


__all__ = [
    "ArenaBuffer",
    "CompiledFunction",
    "CompiledProgram",
    "FAULT_KINDS",
    "ONE_I32",
    "OP_IF",
    "OP_JUMP",
    "OP_LOOPCOND",
    "OP_LOOPSTEP",
    "OP_MARK",
    "OP_OBS",
    "OP_RET",
    "OP_SIMPLE",
    "Runtime",
    "ZERO_I32",
    "buffer_of",
    "convert_for_store",
    "convert_int",
    "deref_cell",
    "execute",
    "invoke",
    "record_branch",
    "truth_of",
    "_ExitSignal",
]
