"""MicroC lexer."""

from __future__ import annotations

import enum
import re
from typing import Iterator

from .types import INTEGER_TYPE_NAMES


class LexError(Exception):
    """Raised on malformed input source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    TYPE_NAME = "type-name"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = frozenset(
    {"struct", "if", "else", "while", "return", "void", "sizeof"}
)

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_CHAR_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
)

_SINGLE_CHAR_OPERATORS = set("+-*/%<>=!&|^~.")
_PUNCTUATION = set("(){};,")


class Token:
    """One lexical token.

    A plain ``__slots__`` class rather than a dataclass: token construction
    is the lexer's hottest allocation and the frozen-dataclass ``__init__``
    (one ``object.__setattr__`` per field) doubled its cost.
    """

    __slots__ = ("kind", "text", "line", "value")

    def __init__(self, kind: TokenKind, text: str, line: int, value: int = 0) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Token({self.kind!r}, {self.text!r}, line={self.line}, value={self.value})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.kind is other.kind
            and self.text == other.text
            and self.line == other.line
            and self.value == other.value
        )

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == text

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text


#: Master scanner: one alternation tried at each position.  Alternatives are
#: ordered so block comments win over the ``/`` operator and multi-character
#: operators over their single-character prefixes.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r]+)
    | (?P<nl>\n)
    | (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<hex>0[xX][0-9a-fA-F]+)
    | (?P<num>[0-9]+[uUlL]*)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||->|[+\-*/%<>=!&|^~.])
    | (?P<punct>[(){};,\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> list[Token]:
    """Tokenise MicroC source text."""
    tokens: list[Token] = []
    append = tokens.append
    line = 1
    position = 0
    length = len(source)
    scan = _TOKEN_RE.match
    while position < length:
        match = scan(source, position)
        if match is None:
            if source.startswith("/*", position):
                raise LexError("unterminated block comment", line)
            raise LexError(f"unexpected character {source[position]!r}", line)
        kind = match.lastgroup
        text = match.group()
        position = match.end()
        if kind == "ws":
            continue
        if kind == "ident":
            if text in KEYWORDS:
                append(Token(TokenKind.KEYWORD, text, line))
            elif text in INTEGER_TYPE_NAMES:
                append(Token(TokenKind.TYPE_NAME, text, line))
            else:
                append(Token(TokenKind.IDENT, text, line))
        elif kind == "op":
            if text == "/" and position < length and source[position] == "*":
                raise LexError("unterminated block comment", line)
            append(Token(TokenKind.OPERATOR, text, line))
        elif kind == "punct":
            append(Token(TokenKind.PUNCT, text, line))
        elif kind == "num":
            digits = text.rstrip("uUlL")
            append(Token(TokenKind.NUMBER, digits, line, int(digits, 10)))
        elif kind == "hex":
            append(Token(TokenKind.NUMBER, text, line, int(text, 16)))
        elif kind == "nl":
            line += 1
        elif kind == "bcomment":
            line += text.count("\n")
        # lcomment: skipped outright
    append(Token(TokenKind.END, "", line))
    return tokens


def _tokens(source: str) -> Iterator[Token]:
    """Iterate tokens (compatibility shim over :func:`tokenize`)."""
    yield from tokenize(source)
