"""MicroC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .types import INTEGER_TYPE_NAMES


class LexError(Exception):
    """Raised on malformed input source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    TYPE_NAME = "type-name"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = frozenset(
    {"struct", "if", "else", "while", "return", "void", "sizeof"}
)

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_CHAR_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
)

_SINGLE_CHAR_OPERATORS = set("+-*/%<>=!&|^~.")
_PUNCTUATION = set("(){};,")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    text: str
    line: int
    value: int = 0

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OPERATOR and self.text == text

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text


def tokenize(source: str) -> list[Token]:
    """Tokenise MicroC source text."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    length = len(source)

    while position < length:
        char = source[position]

        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue

        # Comments.
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue

        # Numbers.
        if char.isdigit():
            start = position
            if source.startswith(("0x", "0X"), position):
                position += 2
                while position < length and source[position] in "0123456789abcdefABCDEF":
                    position += 1
                text = source[start:position]
                yield Token(TokenKind.NUMBER, text, line, int(text, 16))
            else:
                while position < length and source[position].isdigit():
                    position += 1
                text = source[start:position]
                # Allow C-style suffixes (U, L, UL, ULL ...) in transcribed code.
                while position < length and source[position] in "uUlL":
                    position += 1
                yield Token(TokenKind.NUMBER, text, line, int(text, 10))
            continue

        # Identifiers, keywords, and type names.
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            text = source[start:position]
            if text in KEYWORDS:
                yield Token(TokenKind.KEYWORD, text, line)
            elif text in INTEGER_TYPE_NAMES:
                yield Token(TokenKind.TYPE_NAME, text, line)
            else:
                yield Token(TokenKind.IDENT, text, line)
            continue

        # Operators.
        matched = False
        for operator in _MULTI_CHAR_OPERATORS:
            if source.startswith(operator, position):
                yield Token(TokenKind.OPERATOR, operator, line)
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_CHAR_OPERATORS:
            yield Token(TokenKind.OPERATOR, char, line)
            position += 1
            continue
        if char in _PUNCTUATION:
            yield Token(TokenKind.PUNCT, char, line)
            position += 1
            continue
        if char == "[" or char == "]":
            yield Token(TokenKind.PUNCT, char, line)
            position += 1
            continue

        raise LexError(f"unexpected character {char!r}", line)

    yield Token(TokenKind.END, "", line)
