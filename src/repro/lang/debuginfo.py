"""Debugging information for MicroC programs.

CP's check-insertion phase relies on the recipient's debugging information:
"To find the values, CP uses the debugging information from the recipient
binary to identify the local and global variables available at that candidate
insertion point.  Using these variables as roots, it traverses the data
structures..." (§2, §3.3).

The MicroC checker produces the equivalent artefact: for every statement
(program point) the set of variables in scope together with their declared
types, plus the struct layouts needed by the Figure 6 traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .types import StructTable, Type


@dataclass(frozen=True)
class ScopeVariable:
    """A variable visible at a program point."""

    name: str
    type: Type
    kind: str  # "local", "param", or "global"


@dataclass
class DebugInfo:
    """Per-program-point scope information plus type layouts."""

    struct_table: StructTable
    #: statement node_id -> variables in scope immediately *after* the statement.
    scopes: dict[int, tuple[ScopeVariable, ...]] = field(default_factory=dict)
    #: statement node_id -> enclosing function name.
    functions: dict[int, str] = field(default_factory=dict)
    #: function name -> variables in scope at function entry (parameters + globals).
    entry_scopes: dict[str, tuple[ScopeVariable, ...]] = field(default_factory=dict)

    def record(self, statement_id: int, function: str, variables: Iterable[ScopeVariable]) -> None:
        self.scopes[statement_id] = tuple(variables)
        self.functions[statement_id] = function

    def scope_at(self, statement_id: int) -> tuple[ScopeVariable, ...]:
        """Variables in scope immediately after the given statement."""
        try:
            return self.scopes[statement_id]
        except KeyError:
            raise KeyError(f"no debug information for statement {statement_id}") from None

    def function_of(self, statement_id: int) -> str:
        try:
            return self.functions[statement_id]
        except KeyError:
            raise KeyError(f"no debug information for statement {statement_id}") from None

    def has(self, statement_id: int) -> bool:
        return statement_id in self.scopes

    def variable(self, statement_id: int, name: str) -> Optional[ScopeVariable]:
        for entry in self.scope_at(statement_id):
            if entry.name == name:
                return entry
        return None

    def statements_in(self, function: str) -> list[int]:
        """All statement ids recorded for a function, in source order."""
        return sorted(
            statement_id
            for statement_id, function_name in self.functions.items()
            if function_name == function
        )
