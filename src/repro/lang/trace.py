"""Execution traces, error reports, and instrumentation hooks.

A plain run of a MicroC application produces a :class:`RunResult`; an
instrumented run additionally records the artefacts CP consumes:

* :class:`BranchRecord` — one entry per executed conditional branch, with the
  direction taken and the symbolic condition (the raw material of candidate
  check discovery, §3.2),
* :class:`AllocationRecord` — one entry per ``malloc``, with the concrete and
  symbolic size and whether the size computation overflowed (the raw material
  of DIODE-style error discovery),
* the :class:`Hooks` callbacks that the CP insertion-point analysis uses to
  snapshot recipient state at program points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..symbolic.expr import Expr


class ErrorKind(enum.Enum):
    """Classes of runtime errors the VM detects (the paper's three, plus
    null dereference and resource exhaustion for completeness)."""

    INTEGER_OVERFLOW = "integer-overflow"
    OUT_OF_BOUNDS_WRITE = "out-of-bounds-write"
    OUT_OF_BOUNDS_READ = "out-of-bounds-read"
    DIVIDE_BY_ZERO = "divide-by-zero"
    NULL_DEREFERENCE = "null-dereference"
    RESOURCE_EXHAUSTED = "resource-exhausted"


class RunStatus(enum.Enum):
    """How an execution terminated."""

    OK = "ok"                # main returned normally
    EXIT = "exit"            # exit() was called (e.g. by an inserted patch)
    ERROR = "error"          # a runtime error was detected


@dataclass(frozen=True)
class ErrorReport:
    """A detected runtime error."""

    kind: ErrorKind
    message: str
    function: str
    statement_id: int
    line: int

    def location(self) -> str:
        return f"{self.function}@{self.line}"


@dataclass(frozen=True)
class BranchRecord:
    """One execution of a conditional branch."""

    branch_id: int          # node id of the if/while statement
    function: str
    line: int
    taken: bool
    condition_value: int
    symbolic: Optional[Expr]
    sequence: int           # execution order index within the run

    def fields(self) -> frozenset[str]:
        if self.symbolic is None:
            return frozenset()
        return self.symbolic.fields()


@dataclass(frozen=True)
class AllocationRecord:
    """One execution of an allocation site."""

    site_id: int            # node id of the malloc call expression
    statement_id: int       # node id of the enclosing statement
    function: str
    line: int
    size: int               # wrapped size passed to malloc
    true_size: int          # infinite-precision size of the same computation
    symbolic: Optional[Expr]
    overflowed: bool
    sequence: int

    def fields(self) -> frozenset[str]:
        if self.symbolic is None:
            return frozenset()
        return self.symbolic.fields()


@dataclass(frozen=True)
class DivisionRecord:
    """One executed division/remainder whose divisor is input-dependent."""

    site_id: int
    function: str
    line: int
    divisor: int
    symbolic: Optional[Expr]
    sequence: int


@dataclass
class RunResult:
    """Outcome of one execution."""

    status: RunStatus
    exit_code: int = 0
    error: Optional[ErrorReport] = None
    output: list[int] = field(default_factory=list)
    branches: list[BranchRecord] = field(default_factory=list)
    allocations: list[AllocationRecord] = field(default_factory=list)
    divisions: list[DivisionRecord] = field(default_factory=list)
    steps: int = 0
    fields_read: frozenset[str] = frozenset()

    @property
    def ok(self) -> bool:
        """Whether the run completed without a detected error.

        Note that an ``exit()`` call (used by donor checks and inserted
        patches to reject an input) still counts as processing the input
        without error.
        """
        return self.status is not RunStatus.ERROR

    @property
    def crashed(self) -> bool:
        return self.status is RunStatus.ERROR

    @property
    def accepted(self) -> bool:
        """Whether the input was processed to completion (not rejected)."""
        return self.status is RunStatus.OK and self.exit_code == 0

    def behaviour(self) -> tuple:
        """A comparable summary used by regression testing (output + exit)."""
        return (self.status, self.exit_code, tuple(self.output))


# ---------------------------------------------------------------------------
# Batched record materialisation (compiled execution tier)
# ---------------------------------------------------------------------------
#
# The compiled tier (repro.lang.bytecode) does not build record dataclasses
# or simplify branch conditions while the dispatch loop is hot; it appends
# raw tuples and materialises them here once, after the run.  The sequence
# counters in the interpreter increment exactly once per appended record, so
# the enumeration index reproduces them.


def materialize_branches(raw: list, simplify_options) -> list[BranchRecord]:
    """Build :class:`BranchRecord` objects from ``(marker, taken, value,
    symbolic)`` tuples, where ``marker`` is ``(function, branch_id, line)``."""
    from ..symbolic import builder
    from ..symbolic.simplify import simplify

    records = []
    for sequence, (marker, taken, condition_value, symbolic) in enumerate(raw):
        if symbolic is not None:
            symbolic = simplify(builder.is_nonzero(symbolic), simplify_options)
        records.append(
            BranchRecord(
                branch_id=marker[1],
                function=marker[0],
                line=marker[2],
                taken=taken,
                condition_value=condition_value,
                symbolic=symbolic,
                sequence=sequence,
            )
        )
    return records


def materialize_allocations(raw: list) -> list[AllocationRecord]:
    """Build :class:`AllocationRecord` objects from raw allocation tuples."""
    return [
        AllocationRecord(
            site_id=site_id,
            statement_id=statement_id,
            function=function,
            line=line,
            size=size,
            true_size=true_size,
            symbolic=symbolic,
            overflowed=overflowed,
            sequence=sequence,
        )
        for sequence, (
            site_id,
            statement_id,
            function,
            line,
            size,
            true_size,
            symbolic,
            overflowed,
        ) in enumerate(raw)
    ]


def materialize_divisions(raw: list) -> list[DivisionRecord]:
    """Build :class:`DivisionRecord` objects from raw division tuples."""
    return [
        DivisionRecord(
            site_id=site_id,
            function=function,
            line=line,
            divisor=divisor,
            symbolic=symbolic,
            sequence=sequence,
        )
        for sequence, (site_id, function, line, divisor, symbolic) in enumerate(raw)
    ]


class Hooks(Protocol):
    """Instrumentation callbacks; all methods are optional no-ops by default."""

    def on_statement(self, vm, frame, statement) -> None:  # pragma: no cover - protocol
        ...

    def on_branch(self, vm, frame, record: BranchRecord) -> None:  # pragma: no cover
        ...

    def on_allocation(self, vm, frame, record: AllocationRecord) -> None:  # pragma: no cover
        ...

    def on_call(self, vm, frame) -> None:  # pragma: no cover
        ...

    def on_return(self, vm, frame) -> None:  # pragma: no cover
        ...


class NullHooks:
    """Default hooks implementation: does nothing."""

    def on_statement(self, vm, frame, statement) -> None:
        return None

    def on_branch(self, vm, frame, record: BranchRecord) -> None:
        return None

    def on_allocation(self, vm, frame, record: AllocationRecord) -> None:
        return None

    def on_call(self, vm, frame) -> None:
        return None

    def on_return(self, vm, frame) -> None:
        return None
