"""MicroC runtime values and memory model.

Every scalar value carried by the VM is a :class:`TaintedValue`: alongside the
wrapped concrete value it carries the shadow state the paper's Valgrind-based
instrumentation maintains — the symbolic expression over input fields that
produced the value — plus an infinite-precision "true" value used to detect
integer overflow at allocation sites (the DIODE error model).

The heap consists of :class:`Buffer` objects (bounds-checked byte buffers
returned by ``malloc``) and :class:`StructInstance` objects (struct variables
and the targets of struct pointers).  Addressable storage locations are
:class:`Cell` objects; pointers reference cells or buffers.  The CP data
structure traversal (Figure 6) walks exactly these objects, using cell
identity for its ``Visited`` set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..symbolic.expr import Expr
from .types import IntType, PointerType, StructType, Type


class MemoryFault(Exception):
    """Internal signal for memory errors; converted to ErrorReport by the VM."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


@dataclass(frozen=True)
class TaintedValue:
    """A scalar runtime value with taint/symbolic shadow state."""

    value: int
    width: int
    signed: bool = False
    symbolic: Optional[Expr] = None
    true_value: Optional[int] = None

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        object.__setattr__(self, "value", self.value & mask)
        if self.true_value is None:
            object.__setattr__(self, "true_value", self.as_int)

    @property
    def as_int(self) -> int:
        """The value interpreted according to its signedness."""
        if self.signed and self.value >= 1 << (self.width - 1):
            return self.value - (1 << self.width)
        return self.value

    @property
    def is_tainted(self) -> bool:
        return self.symbolic is not None

    @property
    def truth(self) -> bool:
        return self.value != 0

    def fields(self) -> frozenset[str]:
        """Input-field paths this value depends on."""
        if self.symbolic is None:
            return frozenset()
        return self.symbolic.fields()

    @property
    def overflowed(self) -> bool:
        """Whether the wrapped value no longer equals the true computation."""
        return self.true_value != self.as_int


def make_value(
    value: int,
    ctype: Type,
    symbolic: Optional[Expr] = None,
    true_value: Optional[int] = None,
) -> TaintedValue:
    """Construct a TaintedValue for an integer type."""
    if not isinstance(ctype, IntType):
        raise TypeError(f"make_value requires an integer type, got {ctype}")
    return TaintedValue(
        value=value,
        width=ctype.width,
        signed=ctype.signed,
        symbolic=symbolic,
        true_value=true_value,
    )


def fast_value(
    value: int, width: int, signed: bool, symbolic: Optional[Expr], true_value: int
) -> TaintedValue:
    """Construct a :class:`TaintedValue` without dataclass ``__init__`` cost.

    The compiled execution tier (:mod:`repro.lang.bytecode`) builds tens of
    thousands of scalar values per run; going through the frozen dataclass
    constructor (``__init__`` + ``__post_init__`` + ``object.__setattr__``)
    dominates its profile.  Callers must uphold the constructor's invariants
    themselves: ``value`` is already masked to ``width`` and ``true_value``
    is the intended infinite-precision value (never ``None``).
    """
    tv = _TV_NEW(TaintedValue)
    d = tv.__dict__
    d["value"] = value
    d["width"] = width
    d["signed"] = signed
    d["symbolic"] = symbolic
    d["true_value"] = true_value
    return tv


_TV_NEW = TaintedValue.__new__

#: Interned untainted byte values: the compiled tier's arena loads and
#: untracked input reads produce these instead of allocating.
U8_CONSTANTS = tuple(TaintedValue(value, 8) for value in range(256))


_object_counter = itertools.count(1)


@dataclass
class Buffer:
    """A ``malloc``-allocated, bounds-checked byte buffer."""

    size: int
    site_id: int
    function: str
    object_id: int = field(default_factory=lambda: next(_object_counter))
    overflowed_size: bool = False
    contents: dict[int, TaintedValue] = field(default_factory=dict)

    def check_index(self, index: int, access: str) -> None:
        if index < 0 or index >= self.size:
            raise MemoryFault(
                "out-of-bounds-write" if access == "write" else "out-of-bounds-read",
                f"{access} at index {index} outside buffer of size {self.size} "
                f"allocated at statement {self.site_id} in {self.function}",
            )

    def store(self, index: int, value: TaintedValue) -> None:
        self.check_index(index, "write")
        self.contents[index] = value

    def load(self, index: int) -> TaintedValue:
        self.check_index(index, "read")
        return self.contents.get(index, TaintedValue(0, 8))


#: Allocations at or below this size get a real ``bytearray`` arena; larger
#: ones (``malloc64`` can legally request terabytes under the default heap
#: budget) stay sparse so the host never materialises the allocation.
ARENA_LIMIT = 1 << 20


@dataclass
class ArenaBuffer(Buffer):
    """A buffer whose concrete bytes live in a flat ``bytearray`` arena.

    Used by the compiled execution tier.  Plain concrete bytes are stored
    directly in ``data``; the inherited ``contents`` dict is demoted to a
    *shadow* map holding only the values that carry state a byte cannot —
    a symbolic expression or a ``true_value`` that differs from the wrapped
    byte.  Loads therefore reconstruct values bit-for-bit equal to what a
    dict-backed :class:`Buffer` would return (``tests/lang`` holds the
    parity proof), while sequential byte traffic touches no dicts and
    allocates nothing.
    """

    data: Optional[bytearray] = None

    def __post_init__(self) -> None:
        if self.data is None and 0 <= self.size <= ARENA_LIMIT:
            self.data = bytearray(self.size)

    def store(self, index: int, value: TaintedValue) -> None:
        data = self.data
        if data is None:
            Buffer.store(self, index, value)
            return
        if index < 0 or index >= self.size:
            self.check_index(index, "write")
        if value.symbolic is None and value.true_value == value.value:
            data[index] = value.value
            if self.contents:
                self.contents.pop(index, None)
        else:
            self.contents[index] = value

    def load(self, index: int) -> TaintedValue:
        data = self.data
        if data is None:
            return Buffer.load(self, index)
        if index < 0 or index >= self.size:
            self.check_index(index, "read")
        if self.contents:
            shadowed = self.contents.get(index)
            if shadowed is not None:
                return shadowed
        return U8_CONSTANTS[data[index]]


@dataclass
class Cell:
    """A mutable storage location (variable, struct field, or pointee)."""

    declared_type: Type
    value: Union[TaintedValue, "StructInstance", "Pointer", None] = None
    object_id: int = field(default_factory=lambda: next(_object_counter))


@dataclass
class StructInstance:
    """A struct value: one cell per field, instantiated eagerly."""

    struct_type: StructType
    cells: dict[str, Cell] = field(default_factory=dict)
    object_id: int = field(default_factory=lambda: next(_object_counter))

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise MemoryFault(
                "bad-field", f"struct {self.struct_type.name} has no field {name!r}"
            ) from None


@dataclass(frozen=True)
class Pointer:
    """A pointer to a cell (scalars, structs) or to a heap buffer."""

    target: Union[Cell, Buffer, None]
    pointee_type: Type

    @property
    def is_null(self) -> bool:
        return self.target is None


def null_pointer(pointee: Type) -> Pointer:
    return Pointer(target=None, pointee_type=pointee)


def instantiate(ctype: Type) -> Union[TaintedValue, StructInstance, Pointer]:
    """Default (zero) value for a declared type."""
    if isinstance(ctype, IntType):
        return make_value(0, ctype)
    if isinstance(ctype, PointerType):
        return null_pointer(ctype.pointee)
    if isinstance(ctype, StructType):
        instance = StructInstance(struct_type=ctype)
        for entry in ctype.fields:
            instance.cells[entry.name] = Cell(declared_type=entry.type, value=instantiate(entry.type))
        return instance
    raise TypeError(f"cannot instantiate type {ctype}")


def new_cell(ctype: Type) -> Cell:
    """A fresh cell holding the default value of ``ctype``."""
    return Cell(declared_type=ctype, value=instantiate(ctype))
