"""MicroC semantic analysis ("compilation").

The checker resolves types, validates the program, annotates every expression
with its computed type, and produces a :class:`Program`: the executable,
type-checked representation the VM interprets.  It also constructs the
:class:`repro.lang.debuginfo.DebugInfo` that stands in for the DWARF debug
information CP reads from recipient binaries.

Re-running the checker on a patched AST is the reproduction's analogue of the
paper's "CP recompiles the patched recipient application".
"""

from __future__ import annotations

from collections import OrderedDict

from dataclasses import dataclass, field
from typing import Optional

from . import ast
from .debuginfo import DebugInfo, ScopeVariable
from .types import (
    I32,
    IntType,
    PointerType,
    StructField,
    StructTable,
    StructType,
    Type,
    TypeError_,
    U8,
    U16,
    U32,
    U64,
    VOID,
    VoidType,
    assignable,
    integer_type,
    promote,
)


class CheckError(Exception):
    """Raised when a MicroC program fails semantic analysis."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass(frozen=True)
class FunctionSignature:
    """Resolved signature of a user function or builtin."""

    name: str
    return_type: Type
    parameter_types: tuple[Type, ...]
    parameter_names: tuple[str, ...] = ()
    is_builtin: bool = False


#: Builtins available to every MicroC program.  ``read_*`` functions consume
#: bytes from the input stream; ``malloc``/``store8``/``load8`` provide the
#: bounds-checked heap; ``exit`` terminates the run with an exit code.
BUILTIN_SIGNATURES: dict[str, FunctionSignature] = {
    "read_byte": FunctionSignature("read_byte", U8, (), is_builtin=True),
    "read_u16_be": FunctionSignature("read_u16_be", U16, (), is_builtin=True),
    "read_u16_le": FunctionSignature("read_u16_le", U16, (), is_builtin=True),
    "read_u32_be": FunctionSignature("read_u32_be", U32, (), is_builtin=True),
    "read_u32_le": FunctionSignature("read_u32_le", U32, (), is_builtin=True),
    "skip_bytes": FunctionSignature("skip_bytes", VOID, (U32,), ("count",), is_builtin=True),
    "input_remaining": FunctionSignature("input_remaining", U32, (), is_builtin=True),
    "malloc": FunctionSignature("malloc", PointerType(U8), (U32,), ("size",), is_builtin=True),
    "malloc64": FunctionSignature("malloc64", PointerType(U8), (U64,), ("size",), is_builtin=True),
    "store8": FunctionSignature(
        "store8", VOID, (PointerType(U8), U32, U8), ("buffer", "index", "value"), is_builtin=True
    ),
    "load8": FunctionSignature(
        "load8", U8, (PointerType(U8), U32), ("buffer", "index"), is_builtin=True
    ),
    "exit": FunctionSignature("exit", VOID, (I32,), ("code",), is_builtin=True),
    "emit": FunctionSignature("emit", VOID, (U64,), ("value",), is_builtin=True),
}


@dataclass
class Program:
    """A type-checked MicroC program, ready for execution."""

    unit: ast.TranslationUnit
    struct_table: StructTable
    functions: dict[str, ast.FunctionDecl]
    signatures: dict[str, FunctionSignature]
    global_types: dict[str, Type]
    global_inits: dict[str, int]
    debug_info: DebugInfo
    name: str = ""

    @property
    def source(self) -> str:
        return self.unit.source

    def function(self, name: str) -> ast.FunctionDecl:
        try:
            return self.functions[name]
        except KeyError:
            raise CheckError(f"program has no function {name!r}") from None

    def signature(self, name: str) -> FunctionSignature:
        signature = self.signatures.get(name) or BUILTIN_SIGNATURES.get(name)
        if signature is None:
            raise CheckError(f"unknown function {name!r}")
        return signature


class Checker:
    """Performs semantic analysis over a translation unit."""

    def __init__(self, unit: ast.TranslationUnit, name: str = "") -> None:
        self.unit = unit
        self.name = name or unit.name
        self.struct_table = StructTable()
        self.signatures: dict[str, FunctionSignature] = {}
        self.global_types: dict[str, Type] = {}
        self.global_inits: dict[str, int] = {}
        self.debug_info = DebugInfo(struct_table=self.struct_table)

    # -- entry point -----------------------------------------------------------

    def check(self) -> Program:
        for struct_decl in self.unit.structs:
            self._check_struct(struct_decl)
        for global_decl in self.unit.globals:
            self._check_global(global_decl)
        for function in self.unit.functions:
            self._register_function(function)
        functions: dict[str, ast.FunctionDecl] = {}
        for function in self.unit.functions:
            self._check_function(function)
            functions[function.name] = function
        if "main" not in functions:
            raise CheckError("program has no main function")
        return Program(
            unit=self.unit,
            struct_table=self.struct_table,
            functions=functions,
            signatures=self.signatures,
            global_types=self.global_types,
            global_inits=self.global_inits,
            debug_info=self.debug_info,
            name=self.name,
        )

    # -- declarations -------------------------------------------------------------

    def _check_struct(self, decl: ast.StructDecl) -> None:
        fields = []
        for field_decl in decl.fields:
            fields.append(StructField(field_decl.name, self._resolve(field_decl.type_ref)))
        try:
            self.struct_table.define(decl.name, fields)
        except TypeError_ as error:
            raise CheckError(str(error), decl.line) from None

    def _check_global(self, decl: ast.GlobalVarDecl) -> None:
        if decl.name in self.global_types:
            raise CheckError(f"global {decl.name!r} redefined", decl.line)
        declared = self._resolve(decl.type_ref)
        self.global_types[decl.name] = declared
        value = 0
        if decl.init is not None:
            if not isinstance(decl.init, ast.IntLiteral):
                raise CheckError(
                    f"global {decl.name!r} initialiser must be an integer literal", decl.line
                )
            if not isinstance(declared, IntType):
                raise CheckError(f"only integer globals may have initialisers", decl.line)
            decl.init.ctype = declared
            value = decl.init.value
        self.global_inits[decl.name] = value

    def _register_function(self, function: ast.FunctionDecl) -> None:
        if function.name in self.signatures or function.name in BUILTIN_SIGNATURES:
            raise CheckError(f"function {function.name!r} redefined", function.line)
        parameter_types = tuple(self._resolve(param.type_ref) for param in function.parameters)
        parameter_names = tuple(param.name for param in function.parameters)
        for param, param_type in zip(function.parameters, parameter_types):
            if isinstance(param_type, StructType):
                raise CheckError(
                    f"parameter {param.name!r}: structs are passed by pointer in MicroC",
                    param.line,
                )
        self.signatures[function.name] = FunctionSignature(
            name=function.name,
            return_type=self._resolve(function.return_type),
            parameter_types=parameter_types,
            parameter_names=parameter_names,
        )

    # -- type resolution --------------------------------------------------------------

    def _resolve(self, type_ref: ast.TypeRef) -> Type:
        if type_ref.is_struct:
            if not self.struct_table.has(type_ref.name):
                raise CheckError(f"unknown struct {type_ref.name!r}", type_ref.line)
            base: Type = self.struct_table.lookup(type_ref.name)
        elif type_ref.name == "void":
            base = VOID
        else:
            resolved = integer_type(type_ref.name)
            if resolved is None:
                raise CheckError(f"unknown type {type_ref.name!r}", type_ref.line)
            base = resolved
        for _ in range(type_ref.pointer_depth):
            base = PointerType(base)
        return base

    # -- function bodies ------------------------------------------------------------------

    def _check_function(self, function: ast.FunctionDecl) -> None:
        signature = self.signatures[function.name]
        scope: dict[str, Type] = {}
        scope_order: list[ScopeVariable] = [
            ScopeVariable(name, declared, "global") for name, declared in self.global_types.items()
        ]
        for param, param_type in zip(function.parameters, signature.parameter_types):
            if param.name in scope:
                raise CheckError(f"duplicate parameter {param.name!r}", param.line)
            scope[param.name] = param_type
            scope_order.append(ScopeVariable(param.name, param_type, "param"))
        for name, declared in self.global_types.items():
            scope.setdefault(name, declared)
        self.debug_info.entry_scopes[function.name] = tuple(scope_order)
        self._check_block(function.body, function, signature, scope, scope_order)

    def _check_block(
        self,
        block: ast.Block,
        function: ast.FunctionDecl,
        signature: FunctionSignature,
        scope: dict[str, Type],
        scope_order: list[ScopeVariable],
    ) -> None:
        local_names: list[str] = []
        local_count_before = len(scope_order)
        for statement in block.statements:
            self._check_statement(statement, function, signature, scope, scope_order)
            self.debug_info.record(statement.node_id, function.name, scope_order)
        # Pop block-local declarations when leaving the block.
        for variable in scope_order[local_count_before:]:
            if variable.kind == "local":
                scope.pop(variable.name, None)
        del scope_order[local_count_before:]
        del local_names

    def _check_statement(
        self,
        statement: ast.Statement,
        function: ast.FunctionDecl,
        signature: FunctionSignature,
        scope: dict[str, Type],
        scope_order: list[ScopeVariable],
    ) -> None:
        if isinstance(statement, ast.VarDecl):
            declared = self._resolve(statement.type_ref)
            if statement.name in scope and any(
                variable.name == statement.name and variable.kind != "global"
                for variable in scope_order
            ):
                raise CheckError(f"variable {statement.name!r} redefined", statement.line)
            if statement.init is not None:
                init_type = self._check_expression(statement.init, scope)
                if not assignable(declared, init_type):
                    raise CheckError(
                        f"cannot initialise {declared} variable {statement.name!r} "
                        f"with value of type {init_type}",
                        statement.line,
                    )
            scope[statement.name] = declared
            scope_order.append(ScopeVariable(statement.name, declared, "local"))
            return

        if isinstance(statement, ast.Assign):
            target_type = self._check_expression(statement.target, scope)
            if not self._is_lvalue(statement.target):
                raise CheckError("assignment target is not an lvalue", statement.line)
            value_type = self._check_expression(statement.value, scope)
            if not assignable(target_type, value_type):
                raise CheckError(
                    f"cannot assign value of type {value_type} to target of type {target_type}",
                    statement.line,
                )
            return

        if isinstance(statement, ast.If):
            condition_type = self._check_expression(statement.condition, scope)
            if not isinstance(condition_type, (IntType, PointerType)):
                raise CheckError("if condition must be an integer or pointer", statement.line)
            self._check_block(statement.then_block, function, signature, scope, scope_order)
            if statement.else_block is not None:
                self._check_block(statement.else_block, function, signature, scope, scope_order)
            return

        if isinstance(statement, ast.While):
            condition_type = self._check_expression(statement.condition, scope)
            if not isinstance(condition_type, (IntType, PointerType)):
                raise CheckError("while condition must be an integer or pointer", statement.line)
            self._check_block(statement.body, function, signature, scope, scope_order)
            return

        if isinstance(statement, ast.Return):
            if statement.value is None:
                if not isinstance(signature.return_type, VoidType):
                    raise CheckError(
                        f"function {function.name!r} must return {signature.return_type}",
                        statement.line,
                    )
                return
            value_type = self._check_expression(statement.value, scope)
            if isinstance(signature.return_type, VoidType):
                raise CheckError(f"void function {function.name!r} returns a value", statement.line)
            if not assignable(signature.return_type, value_type):
                raise CheckError(
                    f"cannot return {value_type} from function returning {signature.return_type}",
                    statement.line,
                )
            return

        if isinstance(statement, ast.ExprStmt):
            self._check_expression(statement.expression, scope)
            return

        raise CheckError(f"unknown statement kind {type(statement).__name__}", statement.line)

    # -- expressions -----------------------------------------------------------------------

    def _is_lvalue(self, expression: ast.Expression) -> bool:
        if isinstance(expression, ast.Name):
            return True
        if isinstance(expression, ast.FieldAccess):
            return True
        if isinstance(expression, ast.Deref):
            return True
        return False

    def _check_expression(self, expression: ast.Expression, scope: dict[str, Type]) -> Type:
        ctype = self._compute_type(expression, scope)
        expression.ctype = ctype
        return ctype

    def _compute_type(self, expression: ast.Expression, scope: dict[str, Type]) -> Type:
        if isinstance(expression, ast.IntLiteral):
            # Literals default to i32; wider constants become u64.
            if expression.value > 0x7FFFFFFF:
                return U64
            return I32

        if isinstance(expression, ast.Name):
            if expression.name not in scope:
                raise CheckError(f"unknown variable {expression.name!r}", expression.line)
            return scope[expression.name]

        if isinstance(expression, ast.FieldAccess):
            base_type = self._check_expression(expression.base, scope)
            if expression.arrow:
                if not isinstance(base_type, PointerType) or not isinstance(
                    base_type.pointee, StructType
                ):
                    raise CheckError("-> requires a pointer to a struct", expression.line)
                struct = base_type.pointee
            else:
                if not isinstance(base_type, StructType):
                    raise CheckError(". requires a struct value", expression.line)
                struct = base_type
            if not struct.has_field(expression.field_name):
                raise CheckError(
                    f"struct {struct.name} has no field {expression.field_name!r}",
                    expression.line,
                )
            return struct.field_type(expression.field_name)

        if isinstance(expression, ast.Unary):
            operand_type = self._check_expression(expression.operand, scope)
            if expression.op == "!":
                return I32
            if not isinstance(operand_type, IntType):
                raise CheckError(f"unary {expression.op} requires an integer", expression.line)
            return operand_type

        if isinstance(expression, ast.Binary):
            return self._check_binary(expression, scope)

        if isinstance(expression, ast.Cast):
            self._check_expression(expression.operand, scope)
            return self._resolve(expression.target)

        if isinstance(expression, ast.Call):
            return self._check_call(expression, scope)

        if isinstance(expression, ast.AddressOf):
            operand_type = self._check_expression(expression.operand, scope)
            if not self._is_lvalue(expression.operand):
                raise CheckError("& requires an lvalue", expression.line)
            return PointerType(operand_type)

        if isinstance(expression, ast.Deref):
            operand_type = self._check_expression(expression.operand, scope)
            if not isinstance(operand_type, PointerType):
                raise CheckError("* requires a pointer", expression.line)
            return operand_type.pointee

        raise CheckError(f"unknown expression kind {type(expression).__name__}", expression.line)

    def _check_binary(self, expression: ast.Binary, scope: dict[str, Type]) -> Type:
        left_type = self._check_expression(expression.left, scope)
        right_type = self._check_expression(expression.right, scope)
        op = expression.op

        if op in ("&&", "||"):
            return I32

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if isinstance(left_type, PointerType) and isinstance(right_type, (PointerType, IntType)):
                return I32
            if isinstance(left_type, IntType) and isinstance(right_type, IntType):
                return I32
            raise CheckError(f"cannot compare {left_type} and {right_type}", expression.line)

        if not isinstance(left_type, IntType) or not isinstance(right_type, IntType):
            raise CheckError(
                f"operator {op!r} requires integer operands, got {left_type} and {right_type}",
                expression.line,
            )
        try:
            return promote(left_type, right_type)
        except TypeError_ as error:
            raise CheckError(str(error), expression.line) from None

    def _check_call(self, expression: ast.Call, scope: dict[str, Type]) -> Type:
        callee = expression.callee
        if callee.startswith("__sizeof:"):
            return U32

        signature = self.signatures.get(callee) or BUILTIN_SIGNATURES.get(callee)
        if signature is None:
            raise CheckError(f"call to unknown function {callee!r}", expression.line)
        if len(expression.args) != len(signature.parameter_types):
            raise CheckError(
                f"function {callee!r} expects {len(signature.parameter_types)} argument(s), "
                f"got {len(expression.args)}",
                expression.line,
            )
        for argument, expected in zip(expression.args, signature.parameter_types):
            actual = self._check_expression(argument, scope)
            if not assignable(expected, actual):
                raise CheckError(
                    f"argument of type {actual} does not match parameter type {expected} "
                    f"in call to {callee!r}",
                    expression.line,
                )
        return signature.return_type


def check_program(unit: ast.TranslationUnit, name: str = "") -> Program:
    """Type-check a translation unit and return the executable program."""
    return Checker(unit, name=name).check()


#: Content-addressed program cache.  Campaign workers and validation rounds
#: repeatedly compile byte-identical sources (the same candidate patch is
#: revalidated, the same recipient re-registered); keying on the full source
#: text makes the cache self-invalidating — a rewritten program is a new key.
#: Only successful compiles are cached; failures re-raise on every call.
_PROGRAM_CACHE: "OrderedDict[tuple[str, str], Program]" = OrderedDict()
_PROGRAM_CACHE_CAPACITY = 64


def compile_program(source: str, name: str = "<program>") -> Program:
    """Parse and check MicroC source text (the reproduction's "compiler")."""
    key = (name, source)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        from .parser import parse_program

        program = check_program(parse_program(source, name=name), name=name)
        _PROGRAM_CACHE[key] = program
        if len(_PROGRAM_CACHE) > _PROGRAM_CACHE_CAPACITY:
            _PROGRAM_CACHE.popitem(last=False)
    else:
        _PROGRAM_CACHE.move_to_end(key)
    return program
