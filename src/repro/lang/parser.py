"""MicroC recursive-descent parser.

Produces the AST of :mod:`repro.lang.ast`; every node receives a unique
``node_id`` in source order (statement ids are the program points the CP
insertion-point analysis and the patcher work with).
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, TokenKind, tokenize
from .types import INTEGER_TYPE_NAMES


class ParseError(Exception):
    """Raised on syntactically invalid MicroC source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


#: Binary operator precedence levels (lower binds weaker), mirroring C.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    """Parses one MicroC translation unit."""

    def __init__(self, source: str, name: str = "<program>") -> None:
        self._tokens = tokenize(source)
        self._position = 0
        self._next_node_id = 0
        self._source = source
        self._name = name
        self._struct_names: set[str] = set()

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.END:
            self._position += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._advance()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._advance()
        if not token.is_op(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line)
        return token

    def _node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _stamp(self, node: ast.Node, line: int) -> ast.Node:
        node.node_id = self._node_id()
        node.line = line
        return node

    # -- type references ----------------------------------------------------------

    def _at_type(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.TYPE_NAME or token.is_keyword("void"):
            return True
        if token.is_keyword("struct"):
            return True
        return False

    def _parse_type_ref(self) -> ast.TypeRef:
        token = self._advance()
        line = token.line
        if token.is_keyword("struct"):
            name_token = self._expect_ident()
            ref = ast.TypeRef(name=name_token.text, is_struct=True)
        elif token.kind is TokenKind.TYPE_NAME or token.is_keyword("void"):
            ref = ast.TypeRef(name=token.text, is_struct=False)
        else:
            raise ParseError(f"expected a type, found {token.text!r}", token.line)
        while self._peek().is_op("*"):
            self._advance()
            ref.pointer_depth += 1
        self._stamp(ref, line)
        return ref

    # -- top level -------------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(source=self._source, name=self._name)
        self._stamp(unit, 1)
        while self._peek().kind is not TokenKind.END:
            token = self._peek()
            if token.is_keyword("struct") and self._peek(2).is_punct("{"):
                unit.structs.append(self._parse_struct_decl())
            else:
                self._parse_global_or_function(unit)
        return unit

    def _parse_struct_decl(self) -> ast.StructDecl:
        start = self._advance()  # 'struct'
        name = self._expect_ident()
        self._struct_names.add(name.text)
        decl = ast.StructDecl(name=name.text)
        self._stamp(decl, start.line)
        self._expect_punct("{")
        while not self._peek().is_punct("}"):
            type_ref = self._parse_type_ref()
            field_name = self._expect_ident()
            field_decl = ast.StructFieldDecl(type_ref=type_ref, name=field_name.text)
            self._stamp(field_decl, field_name.line)
            decl.fields.append(field_decl)
            self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        return decl

    def _parse_global_or_function(self, unit: ast.TranslationUnit) -> None:
        type_ref = self._parse_type_ref()
        name = self._expect_ident()
        if self._peek().is_punct("("):
            unit.functions.append(self._parse_function(type_ref, name))
            return
        decl = ast.GlobalVarDecl(type_ref=type_ref, name=name.text)
        self._stamp(decl, name.line)
        if self._peek().is_op("="):
            self._advance()
            decl.init = self._parse_expression()
        self._expect_punct(";")
        unit.globals.append(decl)

    def _parse_function(self, return_type: ast.TypeRef, name: Token) -> ast.FunctionDecl:
        function = ast.FunctionDecl(return_type=return_type, name=name.text)
        self._stamp(function, name.line)
        self._expect_punct("(")
        if not self._peek().is_punct(")"):
            while True:
                param_type = self._parse_type_ref()
                param_name = self._expect_ident()
                parameter = ast.Parameter(type_ref=param_type, name=param_name.text)
                self._stamp(parameter, param_name.line)
                function.parameters.append(parameter)
                if self._peek().is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        function.body = self._parse_block()
        return function

    # -- statements ----------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_brace = self._expect_punct("{")
        block = ast.Block()
        self._stamp(block, open_brace.line)
        while not self._peek().is_punct("}"):
            block.statements.append(self._parse_statement())
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()

        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("return"):
            return self._parse_return()
        if self._at_type():
            return self._parse_var_decl()

        # Assignment or expression statement.
        line = token.line
        expression = self._parse_expression()
        if self._peek().is_op("="):
            self._advance()
            value = self._parse_expression()
            statement = ast.Assign(target=expression, value=value)
            self._stamp(statement, line)
        else:
            statement = ast.ExprStmt(expression=expression)
            self._stamp(statement, line)
        self._expect_punct(";")
        return statement

    def _parse_if(self) -> ast.Statement:
        start = self._advance()  # 'if'
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_block = self._parse_block()
        else_block: Optional[ast.Block] = None
        if self._peek().is_keyword("else"):
            self._advance()
            if self._peek().is_keyword("if"):
                # else-if chains: wrap the nested if in a synthetic block.
                nested = self._parse_if()
                else_block = ast.Block(statements=[nested])
                self._stamp(else_block, nested.line)
            else:
                else_block = self._parse_block()
        statement = ast.If(condition=condition, then_block=then_block, else_block=else_block)
        self._stamp(statement, start.line)
        return statement

    def _parse_while(self) -> ast.Statement:
        start = self._advance()  # 'while'
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_block()
        statement = ast.While(condition=condition, body=body)
        self._stamp(statement, start.line)
        return statement

    def _parse_return(self) -> ast.Statement:
        start = self._advance()  # 'return'
        value: Optional[ast.Expression] = None
        if not self._peek().is_punct(";"):
            value = self._parse_expression()
        self._expect_punct(";")
        statement = ast.Return(value=value)
        self._stamp(statement, start.line)
        return statement

    def _parse_var_decl(self) -> ast.Statement:
        type_ref = self._parse_type_ref()
        name = self._expect_ident()
        declaration = ast.VarDecl(type_ref=type_ref, name=name.text)
        self._stamp(declaration, name.line)
        if self._peek().is_op("="):
            self._advance()
            declaration.init = self._parse_expression()
        self._expect_punct(";")
        return declaration

    # -- expressions -------------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_binary(0)

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.OPERATOR:
                break
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            right = self._parse_binary(precedence + 1)
            node = ast.Binary(op=token.text, left=left, right=right)
            self._stamp(node, token.line)
            left = node
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in ("-", "~", "!"):
            self._advance()
            operand = self._parse_unary()
            node = ast.Unary(op=token.text, operand=operand)
            self._stamp(node, token.line)
            return node
        if token.is_op("*"):
            self._advance()
            operand = self._parse_unary()
            node = ast.Deref(operand=operand)
            self._stamp(node, token.line)
            return node
        if token.is_op("&"):
            self._advance()
            operand = self._parse_unary()
            node = ast.AddressOf(operand=operand)
            self._stamp(node, token.line)
            return node
        # Cast: '(' type ')' unary
        if token.is_punct("(") and self._is_cast_ahead():
            self._advance()  # '('
            target = self._parse_type_ref()
            self._expect_punct(")")
            operand = self._parse_unary()
            node = ast.Cast(target=target, operand=operand)
            self._stamp(node, token.line)
            return node
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        next_token = self._peek(1)
        if next_token.kind is TokenKind.TYPE_NAME:
            return True
        if next_token.is_keyword("struct"):
            return True
        return False

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_op("."):
                self._advance()
                field_name = self._expect_ident()
                node = ast.FieldAccess(base=expression, field_name=field_name.text, arrow=False)
                self._stamp(node, field_name.line)
                expression = node
            elif token.is_op("->"):
                self._advance()
                field_name = self._expect_ident()
                node = ast.FieldAccess(base=expression, field_name=field_name.text, arrow=True)
                self._stamp(node, field_name.line)
                expression = node
            else:
                break
        return expression

    def _parse_primary(self) -> ast.Expression:
        token = self._advance()

        if token.kind is TokenKind.NUMBER:
            node = ast.IntLiteral(value=token.value)
            self._stamp(node, token.line)
            return node

        if token.kind is TokenKind.IDENT:
            if self._peek().is_punct("("):
                return self._parse_call(token)
            node = ast.Name(name=token.text)
            self._stamp(node, token.line)
            return node

        if token.is_punct("("):
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression

        if token.is_keyword("sizeof"):
            # sizeof(type) — evaluates to the byte size of the type; resolved
            # by the checker into an integer literal-like expression.
            self._expect_punct("(")
            target = self._parse_type_ref()
            self._expect_punct(")")
            node = ast.Call(callee="__sizeof", args=(ast.IntLiteral(value=0),))
            # Store the type name textually; the checker resolves it.
            node.args = ()
            node.callee = f"__sizeof:{target}"
            self._stamp(node, token.line)
            return node

        raise ParseError(f"unexpected token {token.text!r}", token.line)

    def _parse_call(self, name: Token) -> ast.Expression:
        self._expect_punct("(")
        args: list[ast.Expression] = []
        if not self._peek().is_punct(")"):
            while True:
                args.append(self._parse_expression())
                if self._peek().is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        node = ast.Call(callee=name.text, args=tuple(args))
        self._stamp(node, name.line)
        return node


def parse_program(source: str, name: str = "<program>") -> ast.TranslationUnit:
    """Parse MicroC source text into a translation unit."""
    return Parser(source, name=name).parse()


def parse_expression(source: str) -> ast.Expression:
    """Parse a standalone MicroC expression (used by the patch generator)."""
    parser = Parser(source, name="<expression>")
    expression = parser._parse_expression()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.END:
        raise ParseError(f"unexpected trailing input {trailing.text!r}", trailing.line)
    return expression
