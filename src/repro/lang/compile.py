"""AST-to-bytecode compiler, compile cache, and compiled-tier run entry.

This module turns a type-checked :class:`~repro.lang.checker.Program` into
the :class:`~repro.lang.bytecode.CompiledProgram` form executed by
:mod:`repro.lang.bytecode`:

* every function body is flattened into linear statement bytecode with
  explicit jump targets (no Python recursion or signal exceptions for
  control flow),
* every expression becomes a closure specialised at compile time — static
  result types from the checker, interned constants from a per-program
  constant pool, prebound symbolic-builder functions, and precomputed
  masks — so the hot path does no AST dispatch and no type resolution,
* every variable reference resolves to a list slot.  Names that a local
  declaration may *dynamically* shadow (a ``VarDecl`` naming a global: the
  interpreter's flat per-function locals keep such a local alive after its
  block exits, e.g. across loop iterations) get a boxed slot with a
  ``None`` sentinel and fall back to the global cell, reproducing the
  interpreter's dynamic lookup exactly.  Address-taken names are boxed in
  :class:`~repro.lang.memory.Cell` objects so pointer identity works.

Compiled programs are cached in a content-addressed LRU keyed by the
SHA-256 of the program source.  The cache is the *only* place closures
live — they are never attached to ``Program`` or ``VM`` objects, so
everything that crosses a pickle boundary stays picklable, and campaign
workers started via ``fork`` inherit a warm cache by address-space copy.
When :mod:`repro.lang.patcher` rewrites a check it produces a new source
text, hence a new digest: stale entries are unreachable by construction.
"""

from __future__ import annotations

import hashlib
import operator
import threading
import time
from collections import OrderedDict

from ..formats.raw import RawFormat
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..symbolic import builder
from ..symbolic.expr import Constant
from ..symbolic.simplify import simplify
from . import ast
from .bytecode import (
    OP_IF,
    OP_JUMP,
    OP_LOOPCOND,
    OP_LOOPSTEP,
    OP_MARK,
    OP_OBS,
    OP_RET,
    OP_SIMPLE,
    CompiledFunction,
    CompiledProgram,
    Runtime,
    buffer_of,
    convert_for_store,
    convert_int,
    deref_cell,
    invoke,
)
from .checker import BUILTIN_SIGNATURES, Checker, Program
from .memory import (
    ArenaBuffer,
    Cell,
    MemoryFault,
    Pointer,
    StructInstance,
    TaintedValue,
    fast_value,
    instantiate,
    make_value,
    new_cell,
    null_pointer,
)
from .trace import ErrorKind, NullHooks, RunResult, RunStatus
from .types import I32, IntType, PointerType, StructType, U8, U32, integer_type, promote
from .vm import VM, VMError, _ErrorSignal, _ExitSignal

# Interned i32 truth values (identical by equality to make_value(_, I32)).
_FALSE = make_value(0, I32)
_TRUE = make_value(1, I32)

_CONCRETE_CMP = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_SIGNED_CMP = {
    "==": builder.eq,
    "!=": builder.ne,
    "<": builder.slt,
    "<=": builder.sle,
    ">": builder.sgt,
    ">=": builder.sge,
}
_UNSIGNED_CMP = {
    "==": builder.eq,
    "!=": builder.ne,
    "<": builder.ult,
    "<=": builder.ule,
    ">": builder.ugt,
    ">=": builder.uge,
}

# Slot kinds for local names (see module docstring).
_SIMPLE = 0  # slot holds the raw runtime value
_BOXED = 1   # slot holds a Cell (address-taken or multiply-declared)
_DYN = 2     # slot holds a Cell or the None sentinel (may shadow a global)


class _ProgramCompiler:
    """Compiles one checked program; shared constant pool and type resolver."""

    def __init__(self, program: Program, observed: bool = False) -> None:
        self.program = program
        # Observed artifacts additionally record input-field reads per
        # activation and emit OP_OBS observation points after every
        # non-return statement (the insertion-point analysis tier).
        self.observed = observed
        checker = Checker(program.unit)
        checker.struct_table = program.struct_table
        self.resolve = checker._resolve
        self.global_index = {
            name: index for index, name in enumerate(program.global_types)
        }
        self.constants: dict[tuple, TaintedValue] = {}
        # Shared mutable function table: call sites close over it, so forward
        # references and recursion resolve once compilation completes.
        self.functions: dict[str, CompiledFunction] = {}

    def compile(self) -> CompiledProgram:
        for name in self.program.functions:
            self.functions[name] = _FunctionCompiler(self, name).compile()
        globals_plan = []
        program = self.program
        for name, ctype in program.global_types.items():
            if isinstance(ctype, IntType):
                init = make_value(program.global_inits.get(name, 0), ctype)
                globals_plan.append(
                    (name, (lambda c=ctype, v=init: Cell(declared_type=c, value=v)))
                )
            else:
                globals_plan.append((name, (lambda c=ctype: new_cell(c))))
        return CompiledProgram(
            digest=program_digest(program),
            functions=self.functions,
            globals_plan=tuple(globals_plan),
            global_index=self.global_index,
        )

    def const(self, value: int, ctype: IntType) -> TaintedValue:
        key = (value, ctype.width, ctype.signed)
        cached = self.constants.get(key)
        if cached is None:
            cached = make_value(value, ctype)
            self.constants[key] = cached
        return cached

    def sizeof(self, type_text: str) -> int:
        if type_text.endswith("*"):
            return 8
        if type_text.startswith("struct "):
            struct = self.program.struct_table.lookup(type_text[len("struct ") :])
            return sum(self.sizeof(str(entry.type)) for entry in struct.fields)
        resolved = integer_type(type_text)
        return (resolved.width // 8) if resolved is not None else 8


class _FunctionCompiler:
    """Compiles one function: slot allocation plus statement/expression code."""

    def __init__(self, pc: _ProgramCompiler, name: str) -> None:
        self.pc = pc
        self.fname = name
        self.decl = pc.program.function(name)
        self.signature = pc.program.signature(name)
        self.slots: dict[str, int] = {}
        self.kinds: dict[str, int] = {}
        self.decl_types: dict[str, object] = {}
        self._slot_map = None
        self._classify()

    # -- slot classification ---------------------------------------------------------

    def _expressions(self):
        for statement in self.decl.body.walk_statements():
            for attr in ("init", "value", "target", "condition", "expression"):
                node = getattr(statement, attr, None)
                if isinstance(node, ast.Expression):
                    yield from node.walk()

    def _classify(self) -> None:
        program = self.pc.program
        addressed: set[str] = set()
        for node in self._expressions():
            if isinstance(node, ast.AddressOf) and isinstance(node.operand, ast.Name):
                addressed.add(node.operand.name)
        decl_sites: dict[str, int] = {}
        for statement in self.decl.body.walk_statements():
            if isinstance(statement, ast.VarDecl):
                decl_sites[statement.name] = decl_sites.get(statement.name, 0) + 1
                self.decl_types[statement.name] = self.pc.resolve(statement.type_ref)
        for parameter, ptype in zip(
            self.decl.parameters, self.signature.parameter_types
        ):
            name = parameter.name
            self.decl_types[name] = ptype
            self.slots[name] = len(self.slots)
            self.kinds[name] = _BOXED if name in addressed else _SIMPLE
        for name in decl_sites:
            if name not in self.slots:
                self.slots[name] = len(self.slots)
            if name in program.global_types:
                # A local may dynamically shadow this global: replicate the
                # interpreter's locals-first lookup with a None sentinel.
                self.kinds[name] = _DYN
            elif name in addressed or decl_sites[name] > 1:
                self.kinds[name] = _BOXED
            else:
                self.kinds[name] = _SIMPLE

    # -- function assembly -----------------------------------------------------------

    def compile(self) -> CompiledFunction:
        out: list = []
        self._compile_block(self.decl.body, out)
        code = tuple(tuple(ins) for ins in out)
        return_type = self.signature.return_type
        return_conv = (
            (return_type.width, return_type.signed)
            if isinstance(return_type, IntType)
            else None
        )
        return CompiledFunction(
            name=self.fname,
            nlocals=len(self.slots),
            code=code,
            param_stores=tuple(
                self._param_store(parameter.name)
                for parameter in self.decl.parameters
            ),
            return_conv=return_conv,
            entry_current=(self.fname, -1, 0),
            local_names=tuple(self.slots),
        )

    def _param_store(self, name: str):
        slot = self.slots[name]
        ptype = self.decl_types[name]
        boxed = self.kinds[name] == _BOXED
        if boxed:

            def store(rt, L, argument, slot=slot, ptype=ptype):
                L[slot] = Cell(
                    declared_type=ptype, value=convert_for_store(rt, argument, ptype)
                )

        else:

            def store(rt, L, argument, slot=slot, ptype=ptype):
                L[slot] = convert_for_store(rt, argument, ptype)

        return store

    # -- statements ------------------------------------------------------------------

    def _compile_block(self, block: ast.Block, out: list) -> None:
        for statement in block.statements:
            self._compile_statement(statement, out)

    def _observation(self):
        """The shared ``(slot, kind, declared type)`` map OP_OBS instructions
        carry, so an observer can reconstruct a name -> Cell view of the
        activation's locals without any reference to the compiler."""
        if self._slot_map is None:
            self._slot_map = {
                name: (slot, self.kinds[name], self.decl_types[name])
                for name, slot in self.slots.items()
            }
        return self._slot_map

    def _compile_statement(self, statement: ast.Statement, out: list) -> None:
        marker = (self.fname, statement.node_id, statement.line)
        if isinstance(statement, ast.VarDecl):
            out.append([OP_SIMPLE, self._compile_vardecl(statement), marker])
        elif isinstance(statement, ast.Assign):
            out.append([OP_SIMPLE, self._compile_assign(statement), marker])
        elif isinstance(statement, ast.If):
            ins = [OP_IF, self._compile_expr(statement.condition), marker, 0]
            out.append(ins)
            self._compile_block(statement.then_block, out)
            if statement.else_block is not None:
                jump = [OP_JUMP, 0]
                out.append(jump)
                ins[3] = len(out)
                self._compile_block(statement.else_block, out)
                jump[1] = len(out)
            else:
                ins[3] = len(out)
        elif isinstance(statement, ast.While):
            out.append([OP_MARK, marker])
            condition_pc = len(out)
            ins = [OP_LOOPCOND, self._compile_expr(statement.condition), marker, 0]
            out.append(ins)
            self._compile_block(statement.body, out)
            out.append([OP_LOOPSTEP, condition_pc])
            ins[3] = len(out)
        elif isinstance(statement, ast.Return):
            value_fn = (
                self._compile_expr(statement.value)
                if statement.value is not None
                else None
            )
            out.append([OP_RET, value_fn, marker])
        elif isinstance(statement, ast.ExprStmt):
            # The expression closure itself ticks one step (the root node),
            # and OP_SIMPLE ticks the statement step — same two steps as the
            # interpreter.
            out.append([OP_SIMPLE, self._compile_expr(statement.expression), marker])
        else:
            raise VMError(f"unknown statement {type(statement).__name__}")
        if self.pc.observed and not isinstance(statement, ast.Return):
            # Observation point *after* the whole statement (if/while bodies
            # included — their jump targets resolve to this pc).  Return
            # statements never observe: the interpreter's post-dispatch hook
            # is skipped when the return signal propagates past it.
            out.append([OP_OBS, marker, self._observation()])

    def _compile_vardecl(self, statement: ast.VarDecl):
        ctype = self.pc.resolve(statement.type_ref)
        slot = self.slots[statement.name]
        kind = self.kinds[statement.name]
        init_fn = (
            self._compile_expr(statement.init) if statement.init is not None else None
        )
        if kind == _SIMPLE:
            if init_fn is None:
                if isinstance(ctype, StructType):

                    def fn(rt, L, slot=slot, ctype=ctype):
                        L[slot] = instantiate(ctype)

                else:
                    default = instantiate(ctype)  # interned: TV or null Pointer

                    def fn(rt, L, slot=slot, default=default):
                        L[slot] = default

            elif isinstance(ctype, IntType):
                width, signed = ctype.width, ctype.signed

                def fn(rt, L, slot=slot, init_fn=init_fn, width=width, signed=signed):
                    value = init_fn(rt, L)
                    if value.__class__ is not TaintedValue:
                        raise VMError(
                            f"cannot store {type(value).__name__} into integer cell"
                        )
                    if value.width != width or value.signed != signed:
                        value = convert_int(rt, value, width, signed, False)
                    L[slot] = value

            else:

                def fn(rt, L, slot=slot, init_fn=init_fn, ctype=ctype):
                    L[slot] = convert_for_store(rt, init_fn(rt, L), ctype)

        else:  # _BOXED or _DYN: a fresh Cell per execution (pointer identity)
            if init_fn is None:

                def fn(rt, L, slot=slot, ctype=ctype):
                    L[slot] = Cell(declared_type=ctype, value=instantiate(ctype))

            else:

                def fn(rt, L, slot=slot, init_fn=init_fn, ctype=ctype):
                    value = init_fn(rt, L)
                    L[slot] = Cell(
                        declared_type=ctype, value=convert_for_store(rt, value, ctype)
                    )

        return fn

    def _compile_assign(self, statement: ast.Assign):
        value_fn = self._compile_expr(statement.value)
        target = statement.target
        if isinstance(target, ast.Name):
            resolved = self._resolve_name(target.name)
            if resolved[0] == "local":
                _, slot, kind = resolved
                if kind == _SIMPLE:
                    return self._compile_simple_store(
                        slot, self.decl_types[target.name], value_fn
                    )
                if kind == _DYN:
                    gindex = self.pc.global_index[target.name]

                    def fn(rt, L, slot=slot, gindex=gindex, value_fn=value_fn):
                        value = value_fn(rt, L)
                        cell = L[slot]
                        if cell is None:
                            cell = rt.gslots[gindex]
                        cell.value = convert_for_store(rt, value, cell.declared_type)

                    return fn

                def fn(rt, L, slot=slot, value_fn=value_fn):
                    value = value_fn(rt, L)
                    cell = L[slot]
                    cell.value = convert_for_store(rt, value, cell.declared_type)

                return fn
            _, gindex = resolved

            def fn(rt, L, gindex=gindex, value_fn=value_fn):
                value = value_fn(rt, L)
                cell = rt.gslots[gindex]
                cell.value = convert_for_store(rt, value, cell.declared_type)

            return fn
        cell_fn = self._compile_lvalue(target)

        def fn(rt, L, cell_fn=cell_fn, value_fn=value_fn):
            value = value_fn(rt, L)
            cell = cell_fn(rt, L)
            cell.value = convert_for_store(rt, value, cell.declared_type)

        return fn

    def _compile_simple_store(self, slot: int, ctype, value_fn):
        """Store into a raw slot with the conversion specialised on the
        statically declared type (the interpreter reads ``cell.declared_type``
        at run time; for simple slots that type is a compile-time constant)."""
        if isinstance(ctype, IntType):
            width, signed = ctype.width, ctype.signed

            def fn(rt, L, slot=slot, value_fn=value_fn, width=width, signed=signed):
                value = value_fn(rt, L)
                if value.__class__ is not TaintedValue:
                    raise VMError(
                        f"cannot store {type(value).__name__} into integer cell"
                    )
                if value.width != width or value.signed != signed:
                    value = convert_int(rt, value, width, signed, False)
                L[slot] = value

            return fn
        if isinstance(ctype, PointerType):
            pointee = ctype.pointee
            null = null_pointer(pointee)

            def fn(rt, L, slot=slot, value_fn=value_fn, pointee=pointee, null=null):
                value = value_fn(rt, L)
                cls = value.__class__
                if cls is Pointer:
                    L[slot] = Pointer(target=value.target, pointee_type=pointee)
                elif cls is TaintedValue and value.value == 0:
                    L[slot] = null
                else:
                    raise VMError("cannot store a non-pointer into a pointer cell")

            return fn
        if isinstance(ctype, StructType):

            def fn(rt, L, slot=slot, value_fn=value_fn):
                value = value_fn(rt, L)
                if not isinstance(value, StructInstance):
                    raise VMError("cannot store a non-struct into a struct cell")
                L[slot] = value

            return fn
        raise VMError(f"cannot store into cell of type {ctype}")

    def _resolve_name(self, name: str):
        if name in self.slots:
            return ("local", self.slots[name], self.kinds[name])
        if name in self.pc.global_index:
            return ("global", self.pc.global_index[name])
        raise VMError(f"unknown variable {name!r} in {self.fname}")

    # -- lvalues and struct access -----------------------------------------------------

    def _compile_lvalue(self, expression: ast.Expression):
        """Closure producing the Cell an lvalue designates.  Mirrors
        ``VM._eval_lvalue``: the lvalue node itself does not tick a step; only
        subexpressions routed through ``_eval`` (deref operands, arrow bases)
        do."""
        if isinstance(expression, ast.Name):
            resolved = self._resolve_name(expression.name)
            if resolved[0] == "local":
                _, slot, kind = resolved
                if kind == _DYN:
                    gindex = self.pc.global_index[expression.name]

                    def fn(rt, L, slot=slot, gindex=gindex):
                        cell = L[slot]
                        return rt.gslots[gindex] if cell is None else cell

                    return fn
                if kind == _BOXED:

                    def fn(rt, L, slot=slot):
                        return L[slot]

                    return fn
                raise VMError(
                    f"internal: simple slot {expression.name!r} used as a cell"
                )
            _, gindex = resolved

            def fn(rt, L, gindex=gindex):
                return rt.gslots[gindex]

            return fn
        if isinstance(expression, ast.FieldAccess):
            return self._compile_field_cell(expression)
        if isinstance(expression, ast.Deref):
            operand_fn = self._compile_expr(expression.operand)

            def fn(rt, L, operand_fn=operand_fn):
                return deref_cell(operand_fn(rt, L))

            return fn
        raise VMError(f"{type(expression).__name__} is not an lvalue")

    def _compile_instance(self, expression: ast.Expression):
        """Closure producing the StructInstance a field-access base denotes.

        For simple slots the instance lives directly in the slot; all other
        shapes go through the cell and read ``.value`` — exactly the value
        the interpreter's ``base_cell.value`` yields."""
        if isinstance(expression, ast.Name):
            resolved = self._resolve_name(expression.name)
            if resolved[0] == "local" and resolved[2] == _SIMPLE:
                slot = resolved[1]

                def fn(rt, L, slot=slot):
                    return L[slot]

                return fn
        cell_fn = self._compile_lvalue(expression)

        def fn(rt, L, cell_fn=cell_fn):
            return cell_fn(rt, L).value

        return fn

    def _compile_field_cell(self, expression: ast.FieldAccess):
        field_name = expression.field_name
        if expression.arrow:
            base_fn = self._compile_expr(expression.base)

            def fn(rt, L, base_fn=base_fn, field_name=field_name):
                pointer = base_fn(rt, L)
                if pointer.__class__ is not Pointer:
                    raise VMError("-> applied to a non-pointer")
                instance = deref_cell(pointer).value
                if not isinstance(instance, StructInstance):
                    raise MemoryFault(
                        "null-dereference", "field access on a non-struct value"
                    )
                return instance.cell(field_name)

            return fn
        instance_fn = self._compile_instance(expression.base)

        def fn(rt, L, instance_fn=instance_fn, field_name=field_name):
            instance = instance_fn(rt, L)
            if not isinstance(instance, StructInstance):
                raise MemoryFault(
                    "null-dereference", "field access on a non-struct value"
                )
            return instance.cell(field_name)

        return fn

    # -- expressions -------------------------------------------------------------------

    def _noted(self, fn):
        """Observed tier: wrap a read closure so tainted results record their
        input fields in the activation's ``frame_fields`` — the compiled
        counterpart of the interpreter's ``VM._note`` call sites (name,
        field, and deref reads plus the read builtins and ``load8``)."""
        if not self.pc.observed:
            return fn

        def noted(rt, L, fn=fn):
            value = fn(rt, L)
            if value.__class__ is TaintedValue and value.symbolic is not None:
                rt.frame_fields.update(value.symbolic.fields())
            return value

        return noted

    def _compile_expr(self, expression: ast.Expression):
        """Closure evaluating an expression.  Every closure ticks exactly one
        step for its own node (the interpreter's ``_eval`` prologue) before
        evaluating subexpressions."""
        if isinstance(expression, ast.IntLiteral):
            ctype = expression.ctype if isinstance(expression.ctype, IntType) else I32
            constant = self.pc.const(expression.value, ctype)

            def fn(rt, L, constant=constant):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return constant

            return fn

        if isinstance(expression, ast.Name):
            resolved = self._resolve_name(expression.name)
            if resolved[0] == "local":
                _, slot, kind = resolved
                if kind == _SIMPLE:

                    def fn(rt, L, slot=slot):
                        rt.steps += 1
                        if rt.steps > rt.max_steps:
                            rt.exhausted()
                        return L[slot]

                    return self._noted(fn)
                if kind == _DYN:
                    gindex = self.pc.global_index[expression.name]

                    def fn(rt, L, slot=slot, gindex=gindex):
                        rt.steps += 1
                        if rt.steps > rt.max_steps:
                            rt.exhausted()
                        cell = L[slot]
                        if cell is None:
                            cell = rt.gslots[gindex]
                        return cell.value

                    return self._noted(fn)

                def fn(rt, L, slot=slot):
                    rt.steps += 1
                    if rt.steps > rt.max_steps:
                        rt.exhausted()
                    return L[slot].value

                return self._noted(fn)
            gindex = resolved[1]

            def fn(rt, L, gindex=gindex):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return rt.gslots[gindex].value

            return self._noted(fn)

        if isinstance(expression, ast.FieldAccess):
            cell_fn = self._compile_field_cell(expression)

            def fn(rt, L, cell_fn=cell_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return cell_fn(rt, L).value

            return self._noted(fn)

        if isinstance(expression, ast.Deref):
            operand_fn = self._compile_expr(expression.operand)

            def fn(rt, L, operand_fn=operand_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return deref_cell(operand_fn(rt, L)).value

            return self._noted(fn)

        if isinstance(expression, ast.AddressOf):
            cell_fn = self._compile_lvalue(expression.operand)

            def fn(rt, L, cell_fn=cell_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                cell = cell_fn(rt, L)
                return Pointer(target=cell, pointee_type=cell.declared_type)

            return fn

        if isinstance(expression, ast.Unary):
            return self._compile_unary(expression)

        if isinstance(expression, ast.Binary):
            op = expression.op
            if op in ("&&", "||"):
                return self._compile_logical(expression)
            if op in _CONCRETE_CMP:
                return self._compile_comparison(expression)
            return self._compile_arithmetic(expression)

        if isinstance(expression, ast.Cast):
            return self._compile_cast(expression)

        if isinstance(expression, ast.Call):
            return self._compile_call(expression)

        raise VMError(f"unknown expression {type(expression).__name__}")

    def _compile_cast(self, expression: ast.Cast):
        operand_fn = self._compile_expr(expression.operand)
        target = expression.ctype
        if isinstance(target, IntType):
            width, signed = target.width, target.signed
            null_result = self.pc.const(0, target)
            nonnull_result = self.pc.const(1, target)

            def fn(
                rt,
                L,
                operand_fn=operand_fn,
                width=width,
                signed=signed,
                null_result=null_result,
                nonnull_result=nonnull_result,
                target=target,
            ):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                value = operand_fn(rt, L)
                cls = value.__class__
                if cls is TaintedValue:
                    return convert_int(rt, value, width, signed, True)
                if cls is Pointer:
                    return null_result if value.target is None else nonnull_result
                raise VMError(f"unsupported cast to {target}")

            return fn
        if isinstance(target, PointerType):
            pointee = target.pointee

            def fn(rt, L, operand_fn=operand_fn, pointee=pointee, target=target):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                value = operand_fn(rt, L)
                if value.__class__ is Pointer:
                    return Pointer(target=value.target, pointee_type=pointee)
                raise VMError(f"unsupported cast to {target}")

            return fn

        def fn(rt, L, operand_fn=operand_fn, target=target):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            operand_fn(rt, L)
            raise VMError(f"unsupported cast to {target}")

        return fn

    def _compile_unary(self, expression: ast.Unary):
        op = expression.op
        operand_fn = self._compile_expr(expression.operand)
        if op == "!":

            def fn(rt, L, operand_fn=operand_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                operand = operand_fn(rt, L)
                cls = operand.__class__
                if cls is Pointer:
                    return _TRUE if operand.target is None else _FALSE
                if cls is not TaintedValue:
                    raise VMError("! applied to a non-scalar")
                symbolic = operand.symbolic
                if symbolic is None:
                    return _FALSE if operand.value != 0 else _TRUE
                symbolic = simplify(
                    builder.zext(
                        builder.logical_not(builder.is_nonzero(symbolic)), 32
                    ),
                    rt.simplify_options,
                )
                value = 0 if operand.value != 0 else 1
                return fast_value(value, 32, True, symbolic, value)

            return fn
        ctype = expression.ctype if isinstance(expression.ctype, IntType) else I32
        width, signed = ctype.width, ctype.signed
        mask = (1 << width) - 1
        half = 1 << (width - 1)
        size = 1 << width
        if op == "-":

            def fn(
                rt,
                L,
                operand_fn=operand_fn,
                width=width,
                signed=signed,
                mask=mask,
            ):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                operand = operand_fn(rt, L)
                if operand.__class__ is not TaintedValue:
                    raise VMError("unary - applied to a non-scalar")
                if operand.width != width or operand.signed != signed:
                    operand = convert_int(rt, operand, width, signed, False)
                symbolic = operand.symbolic
                if symbolic is not None:
                    symbolic = simplify(builder.neg(symbolic), rt.simplify_options)
                return fast_value(
                    (-operand.value) & mask,
                    width,
                    signed,
                    symbolic,
                    -operand.true_value,
                )

            return fn
        if op == "~":

            def fn(
                rt,
                L,
                operand_fn=operand_fn,
                width=width,
                signed=signed,
                mask=mask,
                half=half,
                size=size,
            ):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                operand = operand_fn(rt, L)
                if operand.__class__ is not TaintedValue:
                    raise VMError("unary ~ applied to a non-scalar")
                if operand.width != width or operand.signed != signed:
                    operand = convert_int(rt, operand, width, signed, False)
                symbolic = operand.symbolic
                if symbolic is not None:
                    symbolic = simplify(builder.bvnot(symbolic), rt.simplify_options)
                value = (~operand.value) & mask
                true_value = value - size if signed and value >= half else value
                return fast_value(value, width, signed, symbolic, true_value)

            return fn
        raise VMError(f"unknown unary operator {op!r}")

    def _compile_logical(self, expression: ast.Binary):
        left_fn = self._compile_expr(expression.left)
        right_fn = self._compile_expr(expression.right)
        is_and = expression.op == "&&"

        def fn(rt, L, left_fn=left_fn, right_fn=right_fn, is_and=is_and):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            left = left_fn(rt, L)
            cls = left.__class__
            if cls is Pointer:
                left_truth = left.target is not None
                left_sym = None
            elif cls is TaintedValue:
                left_truth = left.value != 0
                left_sym = (
                    builder.is_nonzero(left.symbolic)
                    if left.symbolic is not None
                    else None
                )
            else:
                raise VMError("invalid truth operand")
            right_sym = None
            if is_and != left_truth:
                # Short circuit: (&& with false left) or (|| with true left).
                value = 1 if left_truth else 0
                evaluated_right = False
                right_truth = False
            else:
                right = right_fn(rt, L)
                cls = right.__class__
                if cls is Pointer:
                    right_truth = right.target is not None
                elif cls is TaintedValue:
                    right_truth = right.value != 0
                    if right.symbolic is not None:
                        right_sym = builder.is_nonzero(right.symbolic)
                else:
                    raise VMError("invalid truth operand")
                value = int(right_truth if is_and else (left_truth or right_truth))
                evaluated_right = True
            if left_sym is None and right_sym is None:
                return _TRUE if value else _FALSE
            left_bool = (
                left_sym if left_sym is not None else builder.const(int(left_truth), 1)
            )
            if evaluated_right:
                right_bool = (
                    right_sym
                    if right_sym is not None
                    else builder.const(int(right_truth), 1)
                )
                combined = (
                    builder.logical_and(left_bool, right_bool)
                    if is_and
                    else builder.logical_or(left_bool, right_bool)
                )
            else:
                combined = left_bool
            symbolic = simplify(builder.zext(combined, 32), rt.simplify_options)
            return fast_value(value, 32, True, symbolic, value)

        return fn

    def _compile_comparison(self, expression: ast.Binary):
        op = expression.op
        left_fn = self._compile_expr(expression.left)
        right_fn = self._compile_expr(expression.right)
        concrete_fn = _CONCRETE_CMP[op]
        signed_builder = _SIGNED_CMP[op]
        unsigned_builder = _UNSIGNED_CMP[op]
        is_equality = op in ("==", "!=")

        def fn(
            rt,
            L,
            op=op,
            left_fn=left_fn,
            right_fn=right_fn,
            concrete_fn=concrete_fn,
            signed_builder=signed_builder,
            unsigned_builder=unsigned_builder,
            is_equality=is_equality,
        ):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            left = left_fn(rt, L)
            right = right_fn(rt, L)
            left_cls = left.__class__
            right_cls = right.__class__
            if left_cls is Pointer or right_cls is Pointer:
                if left_cls is Pointer and right_cls is Pointer:
                    equal = left.target is right.target
                elif left_cls is Pointer:
                    if right_cls is not TaintedValue or right.value != 0:
                        raise VMError(
                            "pointers may only be compared with pointers or 0"
                        )
                    equal = left.target is None
                else:
                    if left_cls is not TaintedValue or left.value != 0:
                        raise VMError(
                            "pointers may only be compared with pointers or 0"
                        )
                    equal = right.target is None
                if not is_equality:
                    raise VMError(f"pointer comparison {op!r} not supported")
                result = equal if op == "==" else not equal
                return _TRUE if result else _FALSE
            if left_cls is not TaintedValue or right_cls is not TaintedValue:
                raise VMError("comparison of non-scalar values")
            if left.width == right.width and left.signed == right.signed:
                common_signed = left.signed
            else:
                common = promote(
                    IntType(left.width, left.signed), IntType(right.width, right.signed)
                )
                common_signed = common.signed
                left = convert_int(rt, left, common.width, common_signed, False)
                right = convert_int(rt, right, common.width, common_signed, False)
            concrete = concrete_fn(left.as_int, right.as_int)
            left_sym = left.symbolic
            right_sym = right.symbolic
            if left_sym is None and right_sym is None:
                return _TRUE if concrete else _FALSE
            if left_sym is None:
                left_sym = Constant(width=left.width, value=left.value)
            if right_sym is None:
                right_sym = Constant(width=right.width, value=right.value)
            table_fn = signed_builder if common_signed else unsigned_builder
            symbolic = simplify(
                builder.zext(table_fn(left_sym, right_sym), 32), rt.simplify_options
            )
            value = 1 if concrete else 0
            return fast_value(value, 32, True, symbolic, value)

        return fn

    def _compile_arithmetic(self, expression: ast.Binary):
        op = expression.op
        left_fn = self._compile_expr(expression.left)
        right_fn = self._compile_expr(expression.right)
        result_type = expression.ctype if isinstance(expression.ctype, IntType) else I32
        width, signed = result_type.width, result_type.signed
        mask = (1 << width) - 1
        half = 1 << (width - 1)
        size = 1 << width
        nonscalar_message = f"operator {op!r} applied to non-scalar operands"
        sym_builders = {
            "+": builder.add,
            "-": builder.sub,
            "*": builder.mul,
            "/": builder.sdiv if signed else builder.udiv,
            "%": builder.srem if signed else builder.urem,
            "&": builder.bvand,
            "|": builder.bvor,
            "^": builder.bvxor,
            "<<": builder.shl,
            ">>": builder.ashr if signed else builder.lshr,
        }
        if op not in sym_builders:
            raise VMError(f"unknown binary operator {op!r}")
        sym_builder = sym_builders[op]

        def operands(rt, L):
            left = left_fn(rt, L)
            right = right_fn(rt, L)
            if (
                left.__class__ is not TaintedValue
                or right.__class__ is not TaintedValue
            ):
                raise VMError(nonscalar_message)
            if left.width != width or left.signed != signed:
                left = convert_int(rt, left, width, signed, False)
            if right.width != width or right.signed != signed:
                right = convert_int(rt, right, width, signed, False)
            return left, right

        def symbolic_of(rt, left, right):
            left_sym = left.symbolic
            right_sym = right.symbolic
            if (left_sym is None and right_sym is None) or not rt.track:
                return None
            if left_sym is None:
                left_sym = Constant(width=left.width, value=left.value)
            if right_sym is None:
                right_sym = Constant(width=right.width, value=right.value)
            return simplify(sym_builder(left_sym, right_sym, width), rt.simplify_options)

        if op in ("+", "-", "*"):
            raw_fn = {"+": operator.add, "-": operator.sub, "*": operator.mul}[op]

            def fn(rt, L, raw_fn=raw_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                left, right = operands(rt, L)
                if signed:
                    lv = left.value
                    rv = right.value
                    left_raw = lv - size if lv >= half else lv
                    right_raw = rv - size if rv >= half else rv
                else:
                    left_raw = left.value
                    right_raw = right.value
                return fast_value(
                    raw_fn(left_raw, right_raw) & mask,
                    width,
                    signed,
                    symbolic_of(rt, left, right),
                    raw_fn(left.true_value, right.true_value),
                )

            return fn

        if op in ("/", "%"):
            site_id = expression.node_id
            line = expression.line
            fname = self.fname
            zero_message = f"division by zero at line {line}"
            is_div = op == "/"

            def fn(rt, L):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                left, right = operands(rt, L)
                rt.raw_divisions.append(
                    (site_id, fname, line, right.value, right.symbolic)
                )
                if right.value == 0:
                    raise MemoryFault("divide-by-zero", zero_message)
                if signed:
                    lv = left.value
                    rv = right.value
                    left_raw = lv - size if lv >= half else lv
                    right_raw = rv - size if rv >= half else rv
                    if is_div:
                        quotient = abs(left_raw) // abs(right_raw)
                        value = (
                            -quotient if (left_raw < 0) != (right_raw < 0) else quotient
                        )
                    else:
                        remainder = abs(left_raw) % abs(right_raw)
                        value = -remainder if left_raw < 0 else remainder
                else:
                    value = (
                        left.value // right.value if is_div else left.value % right.value
                    )
                return fast_value(
                    value & mask, width, signed, symbolic_of(rt, left, right), value
                )

            return fn

        if op in ("&", "|", "^"):
            bit_fn = {"&": operator.and_, "|": operator.or_, "^": operator.xor}[op]

            def fn(rt, L, bit_fn=bit_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                left, right = operands(rt, L)
                value = bit_fn(left.value, right.value)
                return fast_value(
                    value, width, signed, symbolic_of(rt, left, right), value
                )

            return fn

        if op == "<<":

            def fn(rt, L):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                left, right = operands(rt, L)
                shift = right.value
                value = 0 if shift >= width else (left.value << shift) & mask
                return fast_value(
                    value,
                    width,
                    signed,
                    symbolic_of(rt, left, right),
                    left.true_value << min(shift, 256),
                )

            return fn

        # op == ">>"
        def fn(rt, L):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            left, right = operands(rt, L)
            shift = right.value
            if signed:
                lv = left.value
                value = (lv - size if lv >= half else lv) >> min(shift, width - 1)
            else:
                value = 0 if shift >= width else left.value >> shift
            return fast_value(
                value & mask, width, signed, symbolic_of(rt, left, right), value
            )

        return fn

    # -- calls and builtins ------------------------------------------------------------

    def _compile_call(self, expression: ast.Call):
        callee = expression.callee
        if callee.startswith("__sizeof:"):
            constant = self.pc.const(self.pc.sizeof(callee.split(":", 1)[1]), U32)

            def fn(rt, L, constant=constant):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return constant

            return fn
        if callee in BUILTIN_SIGNATURES and callee not in self.pc.program.functions:
            return self._compile_builtin(expression)
        arg_fns = tuple(self._compile_expr(argument) for argument in expression.args)
        functions = self.pc.functions  # shared table; filled by the time we run

        def fn(rt, L, callee=callee, arg_fns=arg_fns, functions=functions):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            arguments = [argument_fn(rt, L) for argument_fn in arg_fns]
            return invoke(rt, functions[callee], arguments)

        return fn

    def _compile_builtin(self, expression: ast.Call):
        callee = expression.callee
        if callee == "read_byte":

            def fn(rt, L):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return rt.read_byte()

            return self._noted(fn)
        if callee in ("read_u16_be", "read_u16_le", "read_u32_be", "read_u32_le"):
            read_size = 2 if "u16" in callee else 4
            big_endian = callee.endswith("_be")

            def fn(rt, L, read_size=read_size, big_endian=big_endian):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                return rt.read_multi(read_size, big_endian)

            return self._noted(fn)
        if callee == "skip_bytes":
            count_fn = self._compile_expr(expression.args[0])

            def fn(rt, L, count_fn=count_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                count = count_fn(rt, L)
                rt.cursor += count.value if count.__class__ is TaintedValue else 0
                return _FALSE

            return fn
        if callee == "input_remaining":

            def fn(rt, L):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                remaining = rt.data_len - rt.cursor
                if remaining <= 0:
                    return _U32_ZERO
                return fast_value(remaining, 32, False, None, remaining)

            return fn
        if callee in ("malloc", "malloc64"):
            return self._compile_malloc(expression)
        if callee == "store8":
            buffer_fn = self._compile_expr(expression.args[0])
            index_fn = self._compile_expr(expression.args[1])
            value_fn = self._compile_expr(expression.args[2])

            def fn(rt, L, buffer_fn=buffer_fn, index_fn=index_fn, value_fn=value_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                buffer = buffer_of(buffer_fn(rt, L))
                index = index_fn(rt, L)
                value = value_fn(rt, L)
                if (
                    index.__class__ is not TaintedValue
                    or value.__class__ is not TaintedValue
                ):
                    raise VMError("store8 requires integer index and value")
                # Index with the true (unwrapped) value: a size computation
                # that overflowed produces writes beyond the wrapped
                # allocation, exactly the out-of-bounds behaviour the paper's
                # recipients exhibit.
                if value.width != 8 or value.signed:
                    value = convert_int(rt, value, 8, False, False)
                buffer.store(index.true_value, value)
                return _FALSE

            return fn
        if callee == "load8":
            buffer_fn = self._compile_expr(expression.args[0])
            index_fn = self._compile_expr(expression.args[1])

            def fn(rt, L, buffer_fn=buffer_fn, index_fn=index_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                buffer = buffer_of(buffer_fn(rt, L))
                index = index_fn(rt, L)
                if index.__class__ is not TaintedValue:
                    raise VMError("load8 requires an integer index")
                return buffer.load(index.as_int)

            return self._noted(fn)
        if callee == "exit":
            code_fn = self._compile_expr(expression.args[0])

            def fn(rt, L, code_fn=code_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                code = code_fn(rt, L)
                raise _ExitSignal(
                    code.as_int if code.__class__ is TaintedValue else 0
                )

            return fn
        if callee == "emit":
            value_fn = self._compile_expr(expression.args[0])

            def fn(rt, L, value_fn=value_fn):
                rt.steps += 1
                if rt.steps > rt.max_steps:
                    rt.exhausted()
                value = value_fn(rt, L)
                if value.__class__ is TaintedValue:
                    rt.output.append(value.value)
                return _FALSE

            return fn
        raise VMError(f"unknown builtin {callee!r}")

    def _compile_malloc(self, expression: ast.Call):
        size_fn = self._compile_expr(expression.args[0])
        alloc_width = 64 if expression.callee == "malloc64" else 32
        alloc_mask = (1 << alloc_width) - 1
        site_id = expression.node_id
        line = expression.line
        fname = self.fname

        def fn(rt, L, size_fn=size_fn, alloc_mask=alloc_mask):
            rt.steps += 1
            if rt.steps > rt.max_steps:
                rt.exhausted()
            size_value = size_fn(rt, L)
            if size_value.__class__ is not TaintedValue:
                raise VMError("malloc requires an integer size")
            wrapped = size_value.value & alloc_mask
            true_size = size_value.true_value
            overflowed = (true_size != wrapped) or true_size < 0
            rt.raw_allocations.append(
                (
                    site_id,
                    rt.current[1],
                    fname,
                    line,
                    wrapped,
                    true_size,
                    size_value.symbolic,
                    overflowed,
                )
            )
            if overflowed and rt.detect_overflow:
                rt.error(
                    ErrorKind.INTEGER_OVERFLOW,
                    f"allocation size overflows: true size {true_size} wraps to "
                    f"{wrapped} at {fname} line {line}",
                )
            rt.heap_allocated += wrapped
            if rt.max_heap_bytes and rt.heap_allocated > rt.max_heap_bytes:
                rt.error(
                    ErrorKind.RESOURCE_EXHAUSTED,
                    f"heap exhausted: {rt.heap_allocated} bytes allocated exceeds "
                    f"the {rt.max_heap_bytes}-byte budget "
                    f"at {fname} line {line}",
                )
            buffer = ArenaBuffer(
                size=wrapped,
                site_id=site_id,
                function=fname,
                overflowed_size=overflowed,
            )
            rt.heap.append(buffer)
            return Pointer(target=buffer, pointee_type=U8)

        return fn


_U32_ZERO = make_value(0, U32)

# -- compile cache ------------------------------------------------------------------


def program_digest(program: Program) -> str:
    """Content address of a program: the SHA-256 of its source text.

    Anything that changes semantics changes the source (the patcher rewrites
    source and re-checks it), so stale compiled code is unreachable by
    construction — there is no invalidation protocol to get wrong.
    """
    return hashlib.sha256(program.source.encode("utf-8")).hexdigest()


#: LRU of digest -> CompiledProgram.  Closures live only here (never on
#: Program/VM objects), keeping those pickle-safe; fork-started campaign
#: workers inherit warm entries via address-space copy.
_COMPILE_CACHE: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_COMPILE_CACHE_CAPACITY = 128

#: Guards the LRU bookkeeping (lookup + move_to_end, insert + eviction).
#: ``OrderedDict.move_to_end`` racing an insert/eviction from another repair
#: worker thread can raise or corrupt the recency order; compilation itself
#: runs outside the lock (two threads may compile the same digest once each
#: — the first insert wins, which is merely redundant work, never wrong).
_COMPILE_CACHE_LOCK = threading.Lock()


def compile_program(program: Program, observed: bool = False) -> CompiledProgram:
    """Compile ``program`` (or fetch it from the content-addressed cache).

    ``observed=True`` produces the observed-tier artifact (OP_OBS points and
    field-noting reads) used by the insertion-point analysis; it is cached
    under a distinct key so plain runs never pay for observation.
    """
    digest = program_digest(program)
    key = (digest, "observed") if observed else digest
    registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None
    with _COMPILE_CACHE_LOCK:
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            _COMPILE_CACHE.move_to_end(key)
    if cached is not None:
        if registry is not None:
            registry.inc("vm.compile_cache_hits")
        return cached
    tracer = obs_tracing.active()
    started = time.perf_counter() if (tracer or registry) else 0.0
    compiled = _ProgramCompiler(program, observed).compile()
    with _COMPILE_CACHE_LOCK:
        winner = _COMPILE_CACHE.setdefault(key, compiled)
        if winner is compiled:
            while len(_COMPILE_CACHE) > _COMPILE_CACHE_CAPACITY:
                _COMPILE_CACHE.popitem(last=False)
    compiled = winner
    if registry is not None:
        registry.inc("vm.compile_cache_misses")
        registry.inc("vm.compiles")
        registry.observe("vm.compile_seconds", time.perf_counter() - started)
    if tracer is not None:
        tracer.record(
            "vm-compile",
            "vm",
            time.perf_counter() - started,
            digest=digest[:12],
            functions=len(compiled.functions),
        )
    return compiled


def clear_compile_cache() -> None:
    """Drop all compiled programs (tests and memory-pressure escape hatch)."""
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE.clear()


def compile_cache_info() -> dict:
    """Introspection for tests and diagnostics."""
    with _COMPILE_CACHE_LOCK:
        return {
            "entries": len(_COMPILE_CACHE),
            "capacity": _COMPILE_CACHE_CAPACITY,
            "digests": list(_COMPILE_CACHE),
    }


# -- run entry ----------------------------------------------------------------------


def run_compiled(
    vm: VM,
    data: bytes,
    field_map=None,
    entry: str = "main",
    observer=None,
) -> RunResult:
    """Execute ``vm.program`` on the compiled tier.

    Mirrors ``VM.run`` for un-hooked runs: same result object shape, same
    ``vm.globals``/``vm.result`` postconditions, same telemetry names — plus
    ``tier="compiled"`` on the span and compiled-tier counters.

    ``observer`` (a callable ``observer(rt, marker, slot_map, L)``) selects
    the observed artifact and is invoked at every post-statement OP_OBS
    point — the compiled counterpart of ``Hooks.on_statement``.
    """
    tracer = obs_tracing.active()
    registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None
    started = time.perf_counter() if (tracer or registry) else 0.0

    compiled = compile_program(vm.program, observed=observer is not None)
    if field_map is None:
        field_map = RawFormat().field_map(data)
    rt = Runtime(vm.config, data, field_map)
    rt.observer = observer
    vm.globals = {}
    gslots = rt.gslots
    for name, make_cell in compiled.globals_plan:
        cell = make_cell()
        vm.globals[name] = cell
        gslots.append(cell)
    vm.hooks = NullHooks()
    vm.heap = rt.heap
    result = RunResult(status=RunStatus.OK)
    vm.result = result
    try:
        value = invoke(rt, compiled.functions[entry], ())
        result.status = RunStatus.OK
        result.exit_code = value.as_int if isinstance(value, TaintedValue) else 0
    except _ExitSignal as signal:
        result.status = RunStatus.EXIT
        result.exit_code = signal.code
    except _ErrorSignal as signal:
        result.status = RunStatus.ERROR
        result.error = signal.report
        result.exit_code = 1
    result.steps = rt.steps
    result.fields_read = frozenset(rt.fields_read)
    result.output.extend(rt.output)
    rt.finalize(result)
    if registry is not None:
        registry.inc("vm.runs")
        registry.inc("vm.runs_compiled")
        registry.inc("vm.instructions_retired", rt.steps)
        registry.observe("vm.run_seconds", time.perf_counter() - started)
    if tracer is not None:
        tracer.record(
            "vm-run",
            "vm",
            time.perf_counter() - started,
            entry=entry,
            steps=rt.steps,
            status=result.status.name,
            tier="compiled",
        )
    return result
