"""MicroC type system.

MicroC is the small C-like language in which the donor and recipient
applications of this reproduction are written.  The type system covers what
the paper's benchmark code actually exercises: fixed-width signed/unsigned
integers, pointers, and named structs (whose layout the CP data-structure
traversal of Figure 6 walks via debugging information).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class TypeError_(Exception):
    """Raised for MicroC type errors (named to avoid clashing with the builtin)."""


@dataclass(frozen=True)
class Type:
    """Base class for MicroC types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "type"

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(Type):
    """The void type (function returns only)."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width integer type (u8/u16/u32/u64, i8/i16/i32/i64)."""

    width: int = 32
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width not in (8, 16, 32, 64):
            raise TypeError_(f"unsupported integer width {self.width}")

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.width}"

    @property
    def max_unsigned(self) -> int:
        return (1 << self.width) - 1


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to a pointee type (struct, integer, or another pointer)."""

    pointee: Type = field(default_factory=lambda: IntType(8, False))

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class StructField:
    """One field of a struct type."""

    name: str
    type: Type


@dataclass(frozen=True)
class StructType(Type):
    """A named struct type with ordered fields."""

    name: str = ""
    fields: tuple[StructField, ...] = ()

    def __str__(self) -> str:
        return f"struct {self.name}"

    def field_names(self) -> list[str]:
        return [entry.name for entry in self.fields]

    def field_type(self, name: str) -> Type:
        for entry in self.fields:
            if entry.name == name:
                return entry.type
        raise TypeError_(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(entry.name == name for entry in self.fields)


# -- named integer types ---------------------------------------------------------

U8 = IntType(8, False)
U16 = IntType(16, False)
U32 = IntType(32, False)
U64 = IntType(64, False)
I8 = IntType(8, True)
I16 = IntType(16, True)
I32 = IntType(32, True)
I64 = IntType(64, True)
VOID = VoidType()

INTEGER_TYPE_NAMES: dict[str, IntType] = {
    "u8": U8,
    "u16": U16,
    "u32": U32,
    "u64": U64,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    # C-flavoured aliases used by application sources transcribed from the paper.
    "char": I8,
    "uchar": U8,
    "short": I16,
    "ushort": U16,
    "int": I32,
    "uint": U32,
    "long": I64,
    "ulong": U64,
}


def integer_type(name: str) -> Optional[IntType]:
    """Look up an integer type by keyword, or None if not an integer keyword."""
    return INTEGER_TYPE_NAMES.get(name)


def promote(left: Type, right: Type) -> IntType:
    """MicroC's simplified usual-arithmetic-conversions.

    The result is the wider of the two integer types; on equal widths the
    result is unsigned if either operand is unsigned (mirroring C, which is
    what makes the donor applications' overflow checks behave the way the
    paper describes).
    """
    if not isinstance(left, IntType) or not isinstance(right, IntType):
        raise TypeError_(f"cannot apply arithmetic promotion to {left} and {right}")
    if left.width > right.width:
        return left
    if right.width > left.width:
        return right
    return IntType(left.width, left.signed and right.signed)


def assignable(target: Type, value: Type) -> bool:
    """Whether a value of type ``value`` may be assigned to ``target``."""
    if isinstance(target, IntType) and isinstance(value, IntType):
        return True  # implicit integer conversions, as in C
    if isinstance(target, PointerType) and isinstance(value, PointerType):
        return target.pointee == value.pointee or isinstance(
            value.pointee, VoidType
        ) or isinstance(target.pointee, VoidType)
    return target == value


class StructTable:
    """Registry of struct definitions for one translation unit."""

    def __init__(self) -> None:
        self._structs: dict[str, StructType] = {}

    def define(self, name: str, fields: Iterable[StructField]) -> StructType:
        if name in self._structs:
            raise TypeError_(f"struct {name!r} redefined")
        struct = StructType(name=name, fields=tuple(fields))
        self._structs[name] = struct
        return struct

    def lookup(self, name: str) -> StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise TypeError_(f"unknown struct {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._structs

    def all(self) -> list[StructType]:
        return list(self._structs.values())
