"""The validation engine: batched, incremental SAT-backed decisions.

Every blasted query the equivalence checker issues — equivalence differences
(``E != E'``), overflow conditions, insertion-point constraints — flows
through one :class:`ValidationEngine` per checker (and therefore one per
``RepairSession``).  The engine owns three things:

* **one backend instance** (:mod:`repro.solver.backends`), selected by
  ``EquivalenceOptions.backend``, used *incrementally*: its clause set only
  ever grows, learned clauses persist, and each query is scoped by an
  assumption literal instead of a permanent unit clause;
* **one shared bit-blaster**: expressions are hash-consed, so a subtree
  shared between queries (the same donor check rewritten against many
  insertion points, the same size expression re-validated per candidate) is
  translated to gates exactly once for the engine's whole lifetime — every
  later query reuses the same CNF variables;
* **one query batch** (:class:`QueryBatch`): outcomes are memoised by the
  condition's structural digest, so a structurally identical query issued by
  a different candidate, donor, or pipeline stage is answered without
  touching the solver at all.  The dedupe rate feeds ``SolverStatistics``
  and the per-backend benchmark JSON.

Queries over a field used at conflicting widths cannot share the blaster's
field variables; such queries transparently fall back to a one-shot blaster
and a fresh backend instance (statistics still accrue to the same counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..symbolic.expr import Expr, InputField
from .backends import BackendStatistics, SolverBackend, make_backend
from .bitblast import BitBlaster, BlastError
from .sat import Status


@dataclass
class SatOutcome:
    """The engine's answer to one blasted satisfiability query."""

    status: Status
    witness: Optional[dict[str, int]] = None
    conflicts: int = 0
    backend: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT


class QueryBatch:
    """Digest-keyed memo of query outcomes, with dedupe accounting.

    Entries are namespaced by ``kind`` so the CNF-level outcomes
    (:class:`SatOutcome`) and the checker-level satisfiability verdicts
    share one dedupe surface without colliding.  Expressions are interned
    and their digests content-derived, so a hit means the *query* — not just
    the object — is structurally identical.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, kind: str, digest: str):
        entry = self._entries.get((kind, digest))
        if entry is not None:
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, kind: str, digest: str, outcome) -> None:
        self._entries[(kind, digest)] = outcome

    @property
    def dedupe_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


class ValidationEngine:
    """Decides width-1 conditions with one incremental, shared backend."""

    def __init__(
        self,
        backend: str = "cdcl",
        conflict_limit: int = 5000,
        use_batch: bool = True,
    ) -> None:
        self.backend_name = backend
        self.conflict_limit = conflict_limit
        self.use_batch = use_batch
        self.backend: SolverBackend = make_backend(backend)
        self.batch = QueryBatch()
        self._blaster = BitBlaster()
        self._fed_clauses = 0
        #: Accumulated counters from one-shot fallback solves (each such
        #: query gets a private backend: its blaster numbers variables from
        #: 1, which cannot coexist with the shared solver's clause set).
        self._one_shot_stats: dict[str, BackendStatistics] = {}

    # -- public API --------------------------------------------------------------

    def check_sat(self, condition: Expr, conflict_limit: Optional[int] = None) -> SatOutcome:
        """Decide whether the width-1 ``condition`` has a satisfying assignment.

        Definitive outcomes are memoised by the condition's digest (unless
        the engine was built with ``use_batch=False``, the query-cache
        ablation knob); a repeated query (across candidates, donors, or
        recursive rounds) then costs one dict probe.  ``Status.UNKNOWN``
        means the conflict budget ran out — the caller falls back to its
        cheaper, approximate strategies.  UNKNOWN outcomes are *not*
        cached: a later ask may pass a larger budget or profit from clauses
        learned since, so budget exhaustion must stay retryable.

        Raises :class:`BlastError` only for genuinely un-blastable
        expressions; width clashes against earlier queries are handled by an
        internal one-shot fallback.
        """
        # Observability hook: one flag check each when telemetry is off.
        tracer = obs_tracing.active()
        registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None

        if self.use_batch:
            cached = self.batch.get("cnf", condition.digest)
            if cached is not None:
                if registry is not None:
                    registry.inc("solver.cnf_queries")
                    registry.inc("solver.cnf_batch_hits")
                if tracer is not None:
                    tracer.record(
                        "solver-query",
                        "solver",
                        0.0,
                        cached=True,
                        status=cached.status.name,
                        backend=cached.backend,
                    )
                return cached
        started = time.perf_counter() if (tracer or registry) else 0.0
        outcome = self._solve(condition, conflict_limit or self.conflict_limit)
        if registry is not None:
            registry.inc("solver.cnf_queries")
            registry.inc("solver.cnf_conflicts", outcome.conflicts)
            registry.observe("solver.cnf_seconds", time.perf_counter() - started)
        if tracer is not None:
            tracer.record(
                "solver-query",
                "solver",
                time.perf_counter() - started,
                cached=False,
                status=outcome.status.name,
                conflicts=outcome.conflicts,
                backend=outcome.backend,
            )
        if self.use_batch and outcome.status is not Status.UNKNOWN:
            self.batch.put("cnf", condition.digest, outcome)
        return outcome

    def statistics_by_name(self) -> dict[str, BackendStatistics]:
        """Lifetime statistics for the backend (and portfolio sub-backends)."""
        merged = dict(self.backend.statistics_by_name())
        for name, stats in self._one_shot_stats.items():
            if name in merged:
                combined = BackendStatistics()
                combined.merge(merged[name])
                combined.merge(stats)
                merged[name] = combined
            else:
                merged[name] = stats
        return merged

    def backend_snapshot(self) -> dict[str, dict]:
        """JSON-friendly snapshot of every backend's counters."""
        return {
            name: stats.as_dict()
            for name, stats in self.statistics_by_name().items()
        }

    # -- solving -----------------------------------------------------------------

    def _solve(self, condition: Expr, conflict_limit: int) -> SatOutcome:
        # Blast inside a rollbackable episode: a failed blast (width clash,
        # unsupported shape) must not leave half-translated gates or field
        # registrations behind in the shared blaster.
        mark = self._blaster.snapshot()
        try:
            bit = self._blaster.blast(condition)[0]
        except BlastError:
            self._blaster.rollback(mark)
            return self._solve_one_shot(condition, conflict_limit)
        self._blaster.commit()

        if isinstance(bit, bool):
            return self._constant_outcome(bit, condition)

        # Feed the clauses this query added, then ask under an assumption —
        # never a unit clause, so the condition does not constrain later
        # queries sharing the solver.
        self.backend.ensure_vars(self._blaster.cnf.num_vars)
        clauses = self._blaster.cnf.clauses
        for index in range(self._fed_clauses, len(clauses)):
            self.backend.add_clause(clauses[index])
        self._fed_clauses = len(clauses)

        result = self.backend.solve(assumptions=[bit], max_conflicts=conflict_limit)
        return self._outcome(result, condition, self._blaster)

    def _solve_one_shot(self, condition: Expr, conflict_limit: int) -> SatOutcome:
        """Fresh blaster + backend for a query the shared blaster rejects."""
        blaster = BitBlaster()
        bit = blaster.blast(condition)[0]  # a BlastError here is genuine
        if isinstance(bit, bool):
            return self._constant_outcome(bit, condition)
        blaster.assert_bit(bit, True)
        backend = make_backend(self.backend_name)
        backend.ensure_vars(blaster.cnf.num_vars)
        for clause in blaster.cnf.clauses:
            backend.add_clause(clause)
        result = backend.solve(max_conflicts=conflict_limit)
        for name, stats in backend.statistics_by_name().items():
            self._one_shot_stats.setdefault(name, BackendStatistics()).merge(stats)
        return self._outcome(result, condition, blaster)

    def _constant_outcome(self, bit: bool, condition: Expr) -> SatOutcome:
        """Outcome for a condition the blaster folded to a constant."""
        if not bit:
            return SatOutcome(Status.UNSAT, backend=self.backend.name)
        # Constant-true condition: any assignment works.
        return SatOutcome(
            Status.SAT,
            witness={path: 0 for path in _field_paths(condition)},
            backend=self.backend.name,
        )

    def _outcome(self, result, condition: Expr, blaster: BitBlaster) -> SatOutcome:
        if result.status is Status.SAT:
            full = blaster.field_assignment(result.model)
            paths = _field_paths(condition)
            return SatOutcome(
                Status.SAT,
                witness={path: full.get(path, 0) for path in paths},
                conflicts=result.conflicts,
                backend=self.backend.name,
            )
        return SatOutcome(
            result.status, conflicts=result.conflicts, backend=self.backend.name
        )


def _field_paths(expr: Expr) -> list[str]:
    """The input-field paths ``expr`` depends on (sorted for determinism)."""
    paths = {
        node.path for node in expr.walk_unique() if isinstance(node, InputField)
    }
    return sorted(paths)
