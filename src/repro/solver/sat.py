"""A CDCL SAT solver.

Code Phage uses an SMT solver (Z3 in the original system) to decide whether a
donor subexpression and a recipient expression always evaluate to the same
value.  This reproduction has no Z3 available, so the SMT layer is built from
scratch: bitvector terms are bit-blasted to CNF (:mod:`repro.solver.bitblast`)
and satisfiability is decided by the conflict-driven clause-learning solver in
this module.

The solver is deliberately classical: two-literal watching, first-UIP clause
learning, VSIDS-style activity decay, geometric restarts, and unit-clause
preprocessing.  It is not a competition solver, but it comfortably handles the
equivalence queries the CP rewrite algorithm produces for checks over a few
8/16/32-bit input fields.

The solver is *incremental*: clauses may be added between :meth:`Solver.solve`
calls, learned clauses and level-0 assignments persist across calls, and
assumption literals scope a query to one candidate without constraining the
next.  The backend layer (:mod:`repro.solver.backends`) builds on exactly this
contract; see ``docs/SOLVER.md`` for the semantics.

Literal encoding: variables are positive integers ``1..n``; a literal is
``+v`` or ``-v`` (DIMACS convention).  :meth:`Solver.solve` returns a
:class:`Result` whose ``model`` maps each variable to a boolean when
satisfiable.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence


class Status(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Result:
    """Outcome of a SAT query."""

    status: Status
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT


class SolverError(Exception):
    """Raised for malformed clauses or variable identifiers."""


_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class Solver:
    """Conflict-driven clause-learning SAT solver."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._assignment: list[int] = [_UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[Optional[int]] = [None]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._activity: list[float] = [0.0]
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        #: Lazy max-heap of ``(-activity, var)`` branching candidates.  The
        #: engine keeps one solver for a whole session, so branching must
        #: not scan every variable ever allocated; stale entries (assigned
        #: vars, outdated activities) are dropped as they surface.
        self._heap: list[tuple[float, int]] = []
        self._propagation_head = 0
        self._root_conflict = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned_clauses = 0

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable identifier."""
        self._num_vars += 1
        var = self._num_vars
        self._assignment.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        heapq.heappush(self._heap, (-0.0, var))
        self._watches.setdefault(var, [])
        self._watches.setdefault(-var, [])
        return var

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self._num_vars < count:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (an iterable of non-zero literals)."""
        clause = []
        seen = set()
        for literal in literals:
            if literal == 0:
                raise SolverError("literal 0 is not allowed")
            if abs(literal) > self._num_vars:
                self.ensure_vars(abs(literal))
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        if not clause:
            # Empty clause: the formula is trivially unsatisfiable.
            self._root_conflict = True
            return
        self._attach(clause)

    def _attach(self, clause: list[int]) -> None:
        """Attach a clause, keeping the watch invariant under level-0 facts.

        Clauses may arrive between incremental :meth:`solve` calls, after
        earlier queries have fixed variables at level 0.  A watched literal
        that is already falsified would never be revisited by propagation, so
        non-falsified literals are moved into the watch slots; a clause left
        with one supported literal is asserted immediately, and one with none
        marks the formula unsatisfiable at the root.
        """
        index = len(self._clauses)
        self._clauses.append(clause)
        if len(clause) == 1:
            self._watches[clause[0]].append(index)
            value = self._value(clause[0])
            if value == _FALSE:
                self._root_conflict = True
            elif value == _UNASSIGNED:
                self._assign(clause[0], index)
            return
        slot = 0
        for position, literal in enumerate(clause):
            if self._value(literal) != _FALSE:
                clause[slot], clause[position] = clause[position], clause[slot]
                slot += 1
                if slot == 2:
                    break
        self._watches[clause[0]].append(index)
        self._watches[clause[1]].append(index)
        if slot == 0:
            self._root_conflict = True
        elif slot == 1 and self._value(clause[0]) == _UNASSIGNED:
            self._assign(clause[0], index)

    # -- assignment helpers --------------------------------------------------

    def _value(self, literal: int) -> int:
        value = self._assignment[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    def _assign(self, literal: int, reason: Optional[int]) -> None:
        var = abs(literal)
        self._assignment[var] = _TRUE if literal > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)

    def _unassign_to(self, level: int) -> None:
        target = self._trail_lim[level]
        for literal in reversed(self._trail[target:]):
            var = abs(literal)
            self._assignment[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[target:]
        del self._trail_lim[level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            self.propagations += 1
            falsified = -literal
            watch_list = self._watches[falsified]
            new_watch_list = []
            conflict = None
            for clause_index in watch_list:
                if conflict is not None:
                    new_watch_list.append(clause_index)
                    continue
                clause = self._clauses[clause_index]
                if len(clause) == 1:
                    if self._value(clause[0]) == _FALSE:
                        conflict = clause_index
                        new_watch_list.append(clause_index)
                    else:
                        if self._value(clause[0]) == _UNASSIGNED:
                            self._assign(clause[0], clause_index)
                        new_watch_list.append(clause_index)
                    continue
                # Normalise so that clause[1] is the falsified watch.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == _TRUE:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replacement = None
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != _FALSE:
                        replacement = position
                        break
                if replacement is not None:
                    clause[1], clause[replacement] = clause[replacement], clause[1]
                    self._watches[clause[1]].append(clause_index)
                    continue  # no longer watched by `falsified`
                # Clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) == _FALSE:
                    conflict = clause_index
                else:
                    self._assign(first, clause_index)
            self._watches[falsified] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for index in range(1, len(self._activity)):
                self._activity[index] *= 1e-100
            self._activity_inc *= 1e-100
            # Every heap entry's activity is now stale; rebuild from the
            # unassigned variables (assigned ones re-enter on unassignment).
            self._heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._assignment[v] == _UNASSIGNED
            ]
            heapq.heapify(self._heap)
            return
        if self._assignment[var] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _analyse(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: list[int] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = None
        clause = list(self._clauses[conflict_index])
        index = len(self._trail) - 1

        while True:
            for clause_literal in clause:
                var = abs(clause_literal)
                if clause_literal == literal or seen[var]:
                    continue
                if self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == self._decision_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while index >= 0 and not seen[abs(self._trail[index])]:
                index -= 1
            if index < 0:
                break
            trail_literal = self._trail[index]
            var = abs(trail_literal)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                literal = -trail_literal
                break
            reason_index = self._reason[var]
            clause = list(self._clauses[reason_index]) if reason_index is not None else []
            literal = trail_literal

        assert literal is not None
        learned = [literal] + learned
        if len(learned) == 1:
            return learned, 0
        backjump = max(self._level[abs(lit)] for lit in learned[1:])
        # Place a literal from the backjump level in the second watch slot.
        for position in range(1, len(learned)):
            if self._level[abs(learned[position])] == backjump:
                learned[1], learned[position] = learned[position], learned[1]
                break
        return learned, backjump

    # -- decision heuristic ----------------------------------------------------

    def _pick_branch_variable(self) -> Optional[int]:
        """Highest-activity unassigned variable, via the lazy heap.

        Entries for assigned variables and outdated activities are dropped
        on discovery; every unassigned variable always has one entry
        carrying its current activity (pushed at allocation, on bump, and
        on unassignment), so an empty heap means a full assignment.
        """
        while self._heap:
            negated_activity, var = self._heap[0]
            if (
                self._assignment[var] != _UNASSIGNED
                or -negated_activity != self._activity[var]
            ):
                heapq.heappop(self._heap)
                continue
            return var
        return None

    # -- main loop ---------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Result:
        """Decide satisfiability under the given assumption literals.

        ``max_conflicts`` bounds the search; when exceeded the result status is
        ``UNKNOWN`` (the equivalence layer then falls back to sampling).
        """
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

        if self._root_conflict:
            return Result(Status.UNSAT)

        # Top-level propagation of unit clauses.  A conflict here is at level
        # 0, so the formula itself (not just this query) is unsatisfiable —
        # remembered so later incremental calls need not rediscover it.
        conflict = self._propagate()
        if conflict is not None:
            self._root_conflict = True
            return Result(Status.UNSAT, conflicts=self.conflicts)

        # Apply assumptions as decisions at successive levels.
        for assumption in assumptions:
            value = self._value(assumption)
            if value == _TRUE:
                continue
            if value == _FALSE:
                self._restart()
                return Result(Status.UNSAT, conflicts=self.conflicts)
            self._trail_lim.append(len(self._trail))
            self._assign(assumption, None)
            conflict = self._propagate()
            if conflict is not None:
                self._restart()
                return Result(Status.UNSAT, conflicts=self.conflicts)
        assumption_level = self._decision_level

        restart_limit = 100
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level == assumption_level:
                    if assumption_level == 0:
                        self._root_conflict = True
                    self._unassign_to(0) if self._trail_lim else None
                    self._restart()
                    return Result(Status.UNSAT, conflicts=self.conflicts)
                learned, backjump = self._analyse(conflict)
                backjump = max(backjump, assumption_level)
                self._unassign_to(backjump)
                self.add_clause_learned(learned)
                self._activity_inc /= self._activity_decay
                if max_conflicts is not None and self.conflicts > max_conflicts:
                    self._restart()
                    return Result(Status.UNKNOWN, conflicts=self.conflicts)
                if conflicts_since_restart > restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._unassign_to(assumption_level)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {
                    var: self._assignment[var] == _TRUE
                    for var in range(1, self._num_vars + 1)
                }
                result = Result(
                    Status.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
                self._restart()
                return result

            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._assign(-variable, None)  # negative polarity first: CP queries are mostly UNSAT

    def add_clause_learned(self, clause: list[int]) -> None:
        """Attach a learned clause and assert its first literal."""
        self.learned_clauses += 1
        index = len(self._clauses)
        self._clauses.append(clause)
        if len(clause) == 1:
            self._watches[clause[0]].append(index)
        else:
            self._watches[clause[0]].append(index)
            self._watches[clause[1]].append(index)
        self._assign(clause[0], index)

    def _restart(self) -> None:
        """Drop all decisions (keep learned clauses and level-0 assignments)."""
        if self._trail_lim:
            self._unassign_to(0)


def solve_clauses(
    clauses: Iterable[Iterable[int]],
    num_vars: int = 0,
    assumptions: Sequence[int] = (),
    max_conflicts: Optional[int] = None,
) -> Result:
    """Convenience wrapper: build a solver, add clauses, and solve."""
    solver = Solver()
    if num_vars:
        solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
