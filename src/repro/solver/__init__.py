"""SMT-lite decision procedures for Code Phage.

The original system queries Z3; here the same queries are answered by a hybrid
engine built from pluggable SAT backends (:mod:`repro.solver.backends`: the
incremental CDCL solver of :mod:`repro.solver.sat`, a DPLL reference solver,
and a portfolio that races them), a bitvector bit-blaster
(:mod:`repro.solver.bitblast`), exhaustive enumeration for small domains, and
counterexample sampling.  All blasted queries flow through one incremental
:class:`~repro.solver.engine.ValidationEngine` per checker, and the paper's
two optimisations (disjoint-field filtering and query caching) are layered on
top (:mod:`repro.solver.equivalence`).  ``docs/SOLVER.md`` documents the
layer end to end.
"""

from .backends import (
    BACKENDS,
    BackendStatistics,
    CdclBackend,
    DpllBackend,
    PortfolioBackend,
    SolverBackend,
    make_backend,
)
from .bitblast import BitBlaster, BlastError, CNF, estimate_blast_cost
from .engine import QueryBatch, SatOutcome, ValidationEngine
from .equivalence import (
    EquivalenceChecker,
    EquivalenceOptions,
    EquivalenceResult,
    QueryCache,
    SolverStatistics,
    Verdict,
)
from .overflow import (
    OverflowVerdict,
    check_blocks_overflow,
    overflow_condition,
    overflow_witness,
    widen,
)
from .sat import Result, Solver, SolverError, Status, solve_clauses

__all__ = [
    "BACKENDS",
    "BackendStatistics",
    "BitBlaster",
    "BlastError",
    "CNF",
    "CdclBackend",
    "DpllBackend",
    "EquivalenceChecker",
    "EquivalenceOptions",
    "EquivalenceResult",
    "OverflowVerdict",
    "PortfolioBackend",
    "QueryBatch",
    "QueryCache",
    "Result",
    "SatOutcome",
    "Solver",
    "SolverBackend",
    "SolverError",
    "SolverStatistics",
    "Status",
    "ValidationEngine",
    "Verdict",
    "check_blocks_overflow",
    "estimate_blast_cost",
    "make_backend",
    "overflow_condition",
    "overflow_witness",
    "solve_clauses",
    "widen",
]
