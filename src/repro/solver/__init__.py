"""SMT-lite decision procedures for Code Phage.

The original system queries Z3; here the same queries are answered by a hybrid
engine built from a CDCL SAT solver (:mod:`repro.solver.sat`), a bitvector
bit-blaster (:mod:`repro.solver.bitblast`), exhaustive enumeration for small
domains, and counterexample sampling, with the paper's two optimisations
(disjoint-field filtering and query caching) layered on top
(:mod:`repro.solver.equivalence`).
"""

from .bitblast import BitBlaster, BlastError, CNF, estimate_blast_cost
from .equivalence import (
    EquivalenceChecker,
    EquivalenceOptions,
    EquivalenceResult,
    QueryCache,
    SolverStatistics,
    Verdict,
)
from .overflow import (
    OverflowVerdict,
    check_blocks_overflow,
    overflow_condition,
    overflow_witness,
    widen,
)
from .sat import Result, Solver, SolverError, Status, solve_clauses

__all__ = [
    "BitBlaster",
    "BlastError",
    "CNF",
    "EquivalenceChecker",
    "EquivalenceOptions",
    "EquivalenceResult",
    "OverflowVerdict",
    "QueryCache",
    "Result",
    "Solver",
    "SolverError",
    "SolverStatistics",
    "Status",
    "Verdict",
    "check_blocks_overflow",
    "estimate_blast_cost",
    "overflow_condition",
    "overflow_witness",
    "solve_clauses",
    "widen",
]
