"""Pluggable SAT solver backends.

The validation hot path (:mod:`repro.solver.engine`) decides every blasted
query through a :class:`SolverBackend` — a small incremental-solver contract
that lets the CDCL solver, the DPLL reference solver, and the portfolio
selector be swapped per session (``EquivalenceOptions.backend``, CLI
``--backend``).  The contract, in full (see ``docs/SOLVER.md``):

* ``ensure_vars(n)`` / ``add_clause(clause)`` grow the formula; clauses are
  only added while the backend is idle (between ``solve`` calls), and are
  *permanent* — a backend may never forget one;
* ``solve(assumptions, max_conflicts)`` decides the accumulated formula under
  the given assumption literals.  Assumptions scope a query: they constrain
  this call only, so per-query activation literals (the blasted condition
  bit) never poison later queries.  ``max_conflicts`` bounds the search;
  exceeding it yields ``Status.UNKNOWN``, never a wrong verdict;
* verdicts must agree across backends: for the same formula and assumptions,
  any two backends may differ only in ``UNKNOWN`` (budget) outcomes and in
  *which* model witnesses a SAT answer, never in SAT vs UNSAT
  (property-tested in ``tests/solver/test_backends.py``);
* ``statistics`` accumulates a :class:`BackendStatistics` across the
  backend's lifetime; campaign reporting aggregates these per backend name.

:class:`CdclBackend` wraps the incremental CDCL solver
(:mod:`repro.solver.sat`) and keeps its learned clauses across queries —
that is the assumption-based incremental solving the per-candidate query
sequence (equivalence, overflow, insertion-point constraints) relies on.
:class:`DpllBackend` is a deliberately simple chronological-backtracking
solver: no learning, no watches — the semantic baseline the parity tests
measure the others against, and often the fastest answer on tiny formulas.
:class:`PortfolioBackend` holds one instance of each and races them per
query under escalating conflict budgets, recording which backend won.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Optional, Sequence

from .sat import Result, Solver, SolverError, Status


@dataclass
class BackendStatistics:
    """Lifetime counters for one backend (JSON-friendly via :meth:`as_dict`)."""

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    time_s: float = 0.0
    #: Queries this backend answered definitively on behalf of a portfolio.
    wins: int = 0

    def record(self, result: Result, elapsed_s: float) -> None:
        self.queries += 1
        self.conflicts += result.conflicts
        self.decisions += result.decisions
        self.propagations += result.propagations
        self.time_s += elapsed_s
        if result.status is Status.SAT:
            self.sat += 1
        elif result.status is Status.UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1

    def merge(self, other: "BackendStatistics") -> None:
        """Fold another statistics block into this one (campaign aggregation)."""
        self.queries += other.queries
        self.sat += other.sat
        self.unsat += other.unsat
        self.unknown += other.unknown
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.learned_clauses += other.learned_clauses
        self.time_s += other.time_s
        self.wins += other.wins

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "time_s": round(self.time_s, 6),
            "wins": self.wins,
        }


class SolverBackend:
    """The incremental-solver contract every backend implements."""

    name: str = ""

    def __init__(self) -> None:
        self.statistics = BackendStatistics()

    def ensure_vars(self, count: int) -> None:
        raise NotImplementedError

    def add_clause(self, literals: Iterable[int]) -> None:
        raise NotImplementedError

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Result:
        raise NotImplementedError

    #: Statistics for this backend and any sub-backends, keyed by name.
    def statistics_by_name(self) -> dict[str, BackendStatistics]:
        return {self.name: self.statistics}


class CdclBackend(SolverBackend):
    """The conflict-driven clause-learning solver, used incrementally.

    One :class:`~repro.solver.sat.Solver` instance lives for the backend's
    lifetime: clauses accumulate, learned clauses and level-0 facts persist
    across queries, and each query is scoped by its assumption literals.
    """

    name = "cdcl"

    def __init__(self) -> None:
        super().__init__()
        self._solver = Solver()

    def ensure_vars(self, count: int) -> None:
        self._solver.ensure_vars(count)

    def add_clause(self, literals: Iterable[int]) -> None:
        self._solver.add_clause(literals)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Result:
        learned_before = self._solver.learned_clauses
        started = perf_counter()
        result = self._solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
        self.statistics.record(result, perf_counter() - started)
        self.statistics.learned_clauses += self._solver.learned_clauses - learned_before
        return result


_UNASSIGNED, _TRUE, _FALSE = 0, 1, -1


class DpllBackend(SolverBackend):
    """Chronological-backtracking DPLL: unit propagation, no clause learning.

    Each ``solve`` searches the accumulated clause set from scratch (there is
    nothing to carry over — DPLL learns nothing), which makes it the clean
    reference semantics for parity testing, and surprisingly competitive on
    the small formulas the rewrite algorithm mostly produces.  ``conflicts``
    counts chronological backtracks so ``max_conflicts`` bounds the search
    exactly like the CDCL budget.
    """

    name = "dpll"

    def __init__(self) -> None:
        super().__init__()
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._occurrences: dict[int, list[int]] = {}
        self._empty_clause = False

    def ensure_vars(self, count: int) -> None:
        while self._num_vars < count:
            self._num_vars += 1
            self._occurrences.setdefault(self._num_vars, [])
            self._occurrences.setdefault(-self._num_vars, [])

    def add_clause(self, literals: Iterable[int]) -> None:
        clause: list[int] = []
        seen: set[int] = set()
        for literal in literals:
            if literal == 0:
                raise SolverError("literal 0 is not allowed")
            if abs(literal) > self._num_vars:
                self.ensure_vars(abs(literal))
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        if not clause:
            self._empty_clause = True
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        for literal in clause:
            self._occurrences[literal].append(index)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Result:
        started = perf_counter()
        result = self._search(assumptions, max_conflicts)
        self.statistics.record(result, perf_counter() - started)
        return result

    # -- search ------------------------------------------------------------------

    def _search(
        self, assumptions: Sequence[int], max_conflicts: Optional[int]
    ) -> Result:
        if self._empty_clause:
            return Result(Status.UNSAT)
        assignment = [_UNASSIGNED] * (self._num_vars + 1)
        trail: list[int] = []
        # Each frame: (trail length at decision, decision literal, flipped?).
        decisions: list[tuple[int, int, bool]] = []
        conflicts = 0
        propagations = 0
        decision_count = 0

        def value(literal: int) -> int:
            v = assignment[abs(literal)]
            return v if literal > 0 else -v if v != _UNASSIGNED else _UNASSIGNED

        def assign(literal: int) -> bool:
            """Assign and propagate; False on conflict."""
            nonlocal propagations
            queue = [literal]
            while queue:
                current = queue.pop()
                v = value(current)
                if v == _TRUE:
                    continue
                if v == _FALSE:
                    return False
                assignment[abs(current)] = _TRUE if current > 0 else _FALSE
                trail.append(current)
                propagations += 1
                # Clauses containing the falsified polarity may become unit.
                for index in self._occurrences[-current]:
                    unassigned = None
                    for other in self._clauses[index]:
                        v = value(other)
                        if v == _TRUE:
                            break  # clause satisfied
                        if v == _UNASSIGNED:
                            if unassigned is not None:
                                unassigned = None  # two free literals: not unit
                                break
                            unassigned = other
                    else:
                        if unassigned is None:
                            return False  # every literal false: conflict
                        queue.append(unassigned)
            return True

        def undo_to(length: int) -> None:
            while len(trail) > length:
                assignment[abs(trail.pop())] = _UNASSIGNED

        for literal in assumptions:
            if not assign(literal):
                return Result(
                    Status.UNSAT,
                    conflicts=conflicts,
                    decisions=decision_count,
                    propagations=propagations,
                )
        assumption_mark = len(trail)

        while True:
            branch = next(
                (v for v in range(1, self._num_vars + 1) if assignment[v] == _UNASSIGNED),
                None,
            )
            if branch is None:
                model = {
                    v: assignment[v] == _TRUE for v in range(1, self._num_vars + 1)
                }
                return Result(
                    Status.SAT,
                    model=model,
                    conflicts=conflicts,
                    decisions=decision_count,
                    propagations=propagations,
                )
            decision_count += 1
            # Negative polarity first, matching the CDCL default: CP queries
            # are mostly UNSAT, and all-false is a common easy model.
            decisions.append((len(trail), -branch, False))
            literal = -branch
            while not assign(literal):
                conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    undo_to(assumption_mark)
                    return Result(
                        Status.UNKNOWN,
                        conflicts=conflicts,
                        decisions=decision_count,
                        propagations=propagations,
                    )
                # Chronological backtracking: flip the deepest unflipped decision.
                while decisions and decisions[-1][2]:
                    mark, _, _ = decisions.pop()
                    undo_to(mark)
                if not decisions:
                    return Result(
                        Status.UNSAT,
                        conflicts=conflicts,
                        decisions=decision_count,
                        propagations=propagations,
                    )
                mark, tried, _ = decisions.pop()
                undo_to(mark)
                decisions.append((mark, -tried, True))
                literal = -tried


class PortfolioBackend(SolverBackend):
    """Races the concrete backends per query under escalating budgets.

    Both sub-backends hold the full formula.  A query runs each backend in
    turn under a slice of the conflict budget — DPLL first on small formulas
    (cheap, no learning overhead), CDCL first on everything else — doubling
    the slice each round until some backend answers definitively or the
    total budget is exhausted.  The winner's ``wins`` counter records which
    backend actually settled each query; campaign reports aggregate these to
    show the per-query selection working.
    """

    name = "portfolio"

    #: Formulas with at most this many clauses try DPLL first.
    small_formula_clauses = 64
    #: First-round conflict budget per backend.
    initial_slice = 32

    def __init__(self) -> None:
        super().__init__()
        self._cdcl = CdclBackend()
        self._dpll = DpllBackend()
        self._clause_count = 0

    def ensure_vars(self, count: int) -> None:
        self._cdcl.ensure_vars(count)
        self._dpll.ensure_vars(count)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = list(literals)
        self._cdcl.add_clause(clause)
        self._dpll.add_clause(clause)
        self._clause_count += 1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Result:
        started = perf_counter()
        if self._clause_count <= self.small_formula_clauses:
            order: tuple[SolverBackend, ...] = (self._dpll, self._cdcl)
        else:
            order = (self._cdcl, self._dpll)

        budget = max_conflicts
        spent = {id(backend): 0 for backend in order}
        slice_size = self.initial_slice
        last: Result = Result(Status.UNKNOWN)
        while True:
            exhausted = True
            for backend in order:
                if budget is not None:
                    remaining = budget - spent[id(backend)]
                    if remaining <= 0:
                        continue
                    this_slice = min(slice_size, remaining)
                else:
                    this_slice = slice_size
                result = backend.solve(assumptions=assumptions, max_conflicts=this_slice)
                spent[id(backend)] += result.conflicts
                last = result
                if result.status is not Status.UNKNOWN:
                    backend.statistics.wins += 1
                    self.statistics.record(result, perf_counter() - started)
                    return result
                exhausted = exhausted and (
                    budget is not None and budget - spent[id(backend)] <= 0
                )
            if exhausted:
                self.statistics.record(last, perf_counter() - started)
                return Result(
                    Status.UNKNOWN,
                    conflicts=sum(spent.values()),
                    decisions=last.decisions,
                    propagations=last.propagations,
                )
            slice_size *= 2

    def statistics_by_name(self) -> dict[str, BackendStatistics]:
        return {
            self.name: self.statistics,
            self._cdcl.name: self._cdcl.statistics,
            self._dpll.name: self._dpll.statistics,
        }


#: Backend registry, keyed by the public names ``EquivalenceOptions.backend``
#: and the CLI ``--backend`` flag accept.
BACKENDS: dict[str, type[SolverBackend]] = {
    backend.name: backend for backend in (CdclBackend, DpllBackend, PortfolioBackend)
}


def make_backend(name: str) -> SolverBackend:
    """Instantiate a backend by registry name."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None


def diff_snapshots(before: dict[str, dict], after: dict[str, dict]) -> dict[str, dict]:
    """Per-backend counter deltas between two ``backend_snapshot`` dicts.

    Used to attribute a shared checker's lifetime counters to one transfer
    (:class:`~repro.core.pipeline.TransferMetrics`).  Backends with no
    activity in the window are dropped so records stay compact.
    """
    deltas: dict[str, dict] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        delta = {
            key: round(value - base.get(key, 0), 6)
            for key, value in counters.items()
        }
        if any(delta.values()):
            deltas[name] = delta
    return deltas


def merge_snapshots(total: dict[str, dict], extra: dict[str, dict]) -> None:
    """Fold one snapshot/delta dict into an aggregate (campaign reporting)."""
    for name, counters in extra.items():
        bucket = total.setdefault(name, {})
        for key, value in counters.items():
            bucket[key] = round(bucket.get(key, 0) + value, 6)
