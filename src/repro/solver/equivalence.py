"""Equivalence and satisfiability queries over symbolic expressions.

The CP Rewrite algorithm (paper Figure 7) calls ``SolverEquiv(E, E')`` to ask
whether an excised donor subexpression ``E`` and a recipient expression ``E'``
always evaluate to the same value.  The original system uses Z3; this
reproduction layers a hybrid decision procedure over the in-repo SAT solver:

1. **Syntactic check** — simplify both sides and compare structurally.
2. **Disjoint-fields filter** — the paper's first optimisation: if the two
   expressions depend on different sets of input fields the solver is not
   invoked at all (they are reported not equivalent).
3. **Counterexample sampling** — evaluate both expressions on corner-case and
   random field assignments; any mismatch is a definitive "not equivalent".
4. **Exhaustive enumeration** — when the total number of free input bits is
   small, enumerate every assignment (definitive either way).
5. **Bit-blasting + SAT** — when the estimated circuit size is within budget,
   decide ``E != E'`` exactly with the CDCL solver.
6. **Probabilistic fallback** — otherwise report *probably equivalent* based
   on the sampling evidence (the verdict records that it is unproven; the CP
   validation phase re-checks candidate patches dynamically anyway).

The paper's second optimisation — caching all solver queries — is implemented
by :class:`QueryCache`; together the two optimisations account for the
"order of magnitude reduction in the translation times" claim reproduced by
``benchmarks/bench_ablation_solver_cache.py``.
"""

from __future__ import annotations

import enum
import itertools
import random
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..symbolic import builder
from ..symbolic.evaluate import evaluate
from ..symbolic.expr import Binary, Expr, InputField, Kind, Unary
from ..symbolic.simplify import SimplifyOptions, simplify
from .bitblast import BlastError, estimate_blast_cost
from .engine import ValidationEngine


class Verdict(enum.Enum):
    """Outcome of an equivalence query."""

    EQUIVALENT = "equivalent"                  # proved
    NOT_EQUIVALENT = "not-equivalent"          # proved (witness available)
    PROBABLY_EQUIVALENT = "probably-equivalent"  # sampling only, unproven

    @property
    def accepts(self) -> bool:
        """Whether the rewrite algorithm may use this verdict as a match."""
        return self in (Verdict.EQUIVALENT, Verdict.PROBABLY_EQUIVALENT)

    @property
    def proved(self) -> bool:
        return self in (Verdict.EQUIVALENT, Verdict.NOT_EQUIVALENT)


@dataclass
class EquivalenceResult:
    """Verdict plus supporting evidence for one equivalence query."""

    verdict: Verdict
    method: str
    witness: Optional[dict[str, int]] = None
    samples_checked: int = 0
    sat_conflicts: int = 0


@dataclass
class SolverStatistics:
    """Counters used by the solver-optimisation ablation benchmark."""

    queries: int = 0
    cache_hits: int = 0
    persistent_cache_hits: int = 0
    disjoint_field_skips: int = 0
    syntactic_hits: int = 0
    exhaustive_queries: int = 0
    sat_queries: int = 0
    sampling_fallbacks: int = 0
    satisfiability_queries: int = 0

    @property
    def solver_invocations(self) -> int:
        """Queries that actually reached an expensive decision procedure."""
        return self.exhaustive_queries + self.sat_queries + self.sampling_fallbacks

    @property
    def evaluated_queries(self) -> int:
        """Queries that were not answered by a cache or the field filter.

        This is the quantity the paper's two optimisations reduce "by an order
        of magnitude": every remaining query requires at least simplification
        and counterexample sampling, and possibly an exhaustive or SAT call.
        """
        return (
            self.queries
            - self.cache_hits
            - self.persistent_cache_hits
            - self.disjoint_field_skips
        )


class QueryCache:
    """Memoises equivalence verdicts keyed by the (simplified) query pair.

    Expressions are hash-consed, so the pair key hashes and compares by
    object identity — O(1) per probe, where the pre-interning IR paid a full
    structural hash and deep comparison on every lookup.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[Expr, Expr], EquivalenceResult] = {}

    def get(self, left: Expr, right: Expr) -> Optional[EquivalenceResult]:
        result = self._entries.get((left, right))
        if result is None:
            result = self._entries.get((right, left))
        return result

    def put(self, left: Expr, right: Expr, result: EquivalenceResult) -> None:
        self._entries[(left, right)] = result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class EquivalenceOptions:
    """Tuning knobs; the ablation benchmark flips the two paper optimisations."""

    use_cache: bool = True
    use_disjoint_field_filter: bool = True
    sample_count: int = 48
    exhaustive_bit_limit: int = 16
    #: Equivalence queries whose estimated circuit exceeds this are answered
    #: by sampling; wide multiplier-*equivalence* instances (a miter over two
    #: different circuits) are SAT-hostile, so the budget is deliberately
    #: below the cost of a 32x32 multiplication.
    sat_cost_budget: int = 2000
    #: Truth (satisfiability) queries get a far larger circuit budget: a
    #: single condition propagates instead of fighting a miter, so the SAT
    #: path beats exhaustive enumeration by orders of magnitude even on
    #: widened-multiplication overflow conditions.
    sat_truth_cost_budget: int = 20000
    sat_conflict_limit: int = 5000
    random_seed: int = 0x0C0DE
    #: Which solver backend decides blasted queries: "cdcl" (incremental,
    #: clause-learning — the default), "dpll" (the chronological reference
    #: solver), or "portfolio" (races both per query).  See
    #: :mod:`repro.solver.backends` and ``docs/SOLVER.md``.
    backend: str = "cdcl"
    #: When set, equivalence verdicts are shared across checkers *and*
    #: processes through an append-only JSONL cache at this path (the §3.3
    #: query-cache optimisation at campaign scale; see
    #: :mod:`repro.campaign.cache`).
    persistent_cache_path: Optional[str] = None


_CORNER_VALUES = (0, 1, 2, 3, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF, 0x10000)

#: Verdict methods cheaper to recompute than to round-trip through the
#: persistent cache.
_CHEAP_METHODS = frozenset({"syntactic", "disjoint-fields", "width-mismatch"})

#: Folded into every persistent-cache namespace.  Bump this when the decision
#: procedures change semantically (simplifier, sampling, bit-blasting, SAT)
#: or when the key derivation changes: cached verdicts from older code then
#: stop matching and are recomputed, instead of being silently replayed
#: against new semantics.
#:
#: Version history: 1 = repr-derived keys and repr-seeded sampling;
#: 2 = interned-node digest keys and digest-seeded sampling (PR 2);
#: 3 = backend-aware namespaces, persisted satisfiability verdicts, and the
#: SAT-before-exhaustive truth path (PR 4).
CACHE_SCHEMA_VERSION = 3


class EquivalenceChecker:
    """Hybrid equivalence/satisfiability engine with query caching."""

    def __init__(
        self,
        options: EquivalenceOptions = EquivalenceOptions(),
        simplify_options: SimplifyOptions = SimplifyOptions(),
    ) -> None:
        self.options = options
        self.simplify_options = simplify_options
        self.cache = QueryCache()
        self.statistics = SolverStatistics()
        #: Every blasted query runs through one incremental engine: one
        #: backend instance (learned clauses persist across queries), one
        #: shared bit-blaster, one digest-keyed query batch.
        self.engine = ValidationEngine(
            backend=options.backend,
            conflict_limit=options.sat_conflict_limit,
            use_batch=options.use_cache,
        )
        self.query_batch = self.engine.batch
        self.persistent_cache = None
        if options.persistent_cache_path:
            # Imported lazily: the campaign package depends on the solver.
            from ..campaign.cache import open_solver_cache, query_key

            self._query_key = query_key
            # The path may be a plain JSONL file or a sharded-key-space
            # spec ("dir::shards=P::local=k") from a distributed node.
            self.persistent_cache = open_solver_cache(options.persistent_cache_path)
            # Verdicts are only valid under the options that produced them
            # (sampling depth, SAT budgets, ...), so checkers with different
            # options must not share entries even when they share the file.
            # Two namespaces: *proved* verdicts are backend-independent (any
            # correct backend returns the same SAT/UNSAT answer), so they
            # live in the neutral namespace and are shared across backends;
            # budget-limited verdicts ("sat-timeout", unproven
            # satisfiability) can legitimately differ per backend and are
            # quarantined in a backend-qualified namespace.
            self._ns_neutral = ":".join(
                str(value)
                for value in (
                    CACHE_SCHEMA_VERSION,
                    options.use_disjoint_field_filter,
                    options.sample_count,
                    options.exhaustive_bit_limit,
                    options.sat_cost_budget,
                    options.sat_truth_cost_budget,
                    options.sat_conflict_limit,
                    options.random_seed,
                )
            )
            self._ns_backend = self._ns_neutral + ":" + options.backend

    # -- public API ------------------------------------------------------------

    def equivalent(self, left: Expr, right: Expr) -> EquivalenceResult:
        """Decide whether ``left`` and ``right`` always evaluate equally."""
        tracer = obs_tracing.active()
        registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None
        if tracer is None and registry is None:
            return self._equivalent(left, right)
        # Cache hits are inferred from the statistics deltas so the telemetry
        # wrapper never has to reach into the decision ladder.
        base_hits = self.statistics.cache_hits + self.statistics.persistent_cache_hits
        started = time.perf_counter()
        result = self._equivalent(left, right)
        elapsed = time.perf_counter() - started
        cached = (
            self.statistics.cache_hits + self.statistics.persistent_cache_hits
        ) > base_hits
        if registry is not None:
            registry.inc("solver.queries")
            if cached:
                registry.inc("solver.cache_hits")
            registry.observe("solver.query_seconds", elapsed)
        if tracer is not None:
            tracer.record(
                "solver-equivalence",
                "solver",
                elapsed,
                verdict=result.verdict.name,
                method=result.method,
                cached=cached,
            )
        return result

    def _equivalent(self, left: Expr, right: Expr) -> EquivalenceResult:
        self.statistics.queries += 1
        left_simplified = simplify(left, self.simplify_options)
        right_simplified = simplify(right, self.simplify_options)

        if self.options.use_cache:
            cached = self.cache.get(left_simplified, right_simplified)
            if cached is not None:
                self.statistics.cache_hits += 1
                return cached

        pair_key = None
        if self.persistent_cache is not None:
            pair_key = self._query_key(left_simplified, right_simplified)
            # Proved verdicts live in the backend-neutral namespace (shared
            # across backends); budget-limited ones are backend-qualified.
            payload = self.persistent_cache.get(self._ns_neutral + "##" + pair_key)
            if payload is None:
                payload = self.persistent_cache.get(self._ns_backend + "##" + pair_key)
            if payload is not None:
                self.statistics.persistent_cache_hits += 1
                result = _result_from_payload(payload)
                if self.options.use_cache:
                    self.cache.put(left_simplified, right_simplified, result)
                return result

        result = self._decide(left_simplified, right_simplified)

        if pair_key is not None and result.method not in _CHEAP_METHODS:
            # Trivially recomputable verdicts are not worth a locked append
            # and a cache line carrying both expression digests.
            namespace = (
                self._ns_backend if result.method == "sat-timeout" else self._ns_neutral
            )
            self.persistent_cache.put(
                namespace + "##" + pair_key, _result_to_payload(result)
            )
        if self.options.use_cache:
            self.cache.put(left_simplified, right_simplified, result)
        return result

    def satisfiable(self, condition: Expr) -> tuple[bool, Optional[dict[str, int]]]:
        """Decide whether a width-1 condition has a satisfying field assignment.

        Used by the overflow-specific validation step
        (:mod:`repro.solver.overflow`) and the DIODE rescan.  Returns
        ``(satisfiable, witness_or_None)``; when the formula is too large for
        SAT the answer is based on sampling and (for small domains)
        exhaustive enumeration (a found witness is always genuine; absence
        of a witness is then only probabilistic).

        *Proved* verdicts are memoised in the session's :class:`QueryBatch`
        (keyed by the simplified condition's digest) and, when configured,
        the persistent cross-process cache — the per-candidate validation
        loop re-asks the same overflow condition for every candidate patch,
        and only the first ask pays.  Unproven verdicts (every decision
        procedure exhausted its budget) are deliberately *not* cached: a
        later ask may profit from clauses the solver has learned since, so
        budget exhaustion stays retryable — matching
        :meth:`ValidationEngine.check_sat`'s treatment of UNKNOWN.
        """
        tracer = obs_tracing.active()
        registry = obs_metrics.REGISTRY if obs_metrics.REGISTRY.enabled else None
        if tracer is None and registry is None:
            return self._satisfiable(condition)
        base_batch = self.query_batch.hits
        base_persistent = self.statistics.persistent_cache_hits
        started = time.perf_counter()
        answer = self._satisfiable(condition)
        elapsed = time.perf_counter() - started
        cached = (
            self.query_batch.hits > base_batch
            or self.statistics.persistent_cache_hits > base_persistent
        )
        if registry is not None:
            registry.inc("solver.queries")
            if cached:
                registry.inc("solver.cache_hits")
            registry.observe("solver.query_seconds", elapsed)
        if tracer is not None:
            tracer.record(
                "solver-satisfiable",
                "solver",
                elapsed,
                satisfiable=answer[0],
                cached=cached,
            )
        return answer

    def _satisfiable(self, condition: Expr) -> tuple[bool, Optional[dict[str, int]]]:
        self.statistics.satisfiability_queries += 1
        condition = simplify(condition, self.simplify_options)

        if self.options.use_cache:
            cached = self.query_batch.get("satisfiable", condition.digest)
            if cached is not None:
                return cached

        persistent_key = None
        if self.persistent_cache is not None:
            # Only proved verdicts are stored, and proved verdicts are
            # backend-independent, so one neutral-namespace key suffices.
            persistent_key = self._ns_neutral + "##sat##" + condition.digest
            payload = self.persistent_cache.get(persistent_key)
            if payload is not None:
                self.statistics.persistent_cache_hits += 1
                witness = payload.get("witness")
                answer = (
                    bool(payload.get("satisfiable")),
                    dict(witness) if witness is not None else None,
                )
                self._remember_satisfiable(condition, answer, persist=None)
                return answer

        answer, proved = self._decide_satisfiable(condition)
        if proved:
            self._remember_satisfiable(condition, answer, persist=persistent_key)
        return answer

    def _decide_satisfiable(
        self, condition: Expr
    ) -> tuple[tuple[bool, Optional[dict[str, int]]], bool]:
        """The satisfiability decision ladder; returns (answer, proved)."""
        fields = _field_widths(condition)

        # Sampling first: cheap and yields real witnesses.
        witness = self._sample_for_truth(condition, fields, self._query_random(condition))
        if witness is not None:
            return (True, witness), True

        # SAT next: a single condition propagates well (unlike an
        # equivalence miter), so the backend routinely beats exhaustive
        # enumeration by orders of magnitude — hence the larger budget.
        if estimate_blast_cost(condition) <= self.options.sat_truth_cost_budget:
            try:
                self.statistics.sat_queries += 1
                outcome = self.engine.check_sat(condition)
                if outcome.is_unsat:
                    return (False, None), True
                if outcome.is_sat and outcome.witness is not None:
                    # Trust but verify: the witness must reproduce concretely.
                    if evaluate(condition, outcome.witness):
                        return (True, dict(outcome.witness)), True
                # UNKNOWN (conflict budget) or an unconfirmed witness: fall
                # through to the enumeration/sampling verdicts.
            except BlastError:
                pass

        total_bits = sum(fields.values())
        if total_bits <= self.options.exhaustive_bit_limit:
            self.statistics.exhaustive_queries += 1
            found = self._exhaustive_for_truth(condition, fields)
            return ((found is not None), found), True

        self.statistics.sampling_fallbacks += 1
        return (False, None), False

    def _remember_satisfiable(
        self,
        condition: Expr,
        answer: tuple[bool, Optional[dict[str, int]]],
        persist: Optional[str],
    ) -> None:
        """Record a proved satisfiability verdict in the caches."""
        if self.options.use_cache:
            self.query_batch.put("satisfiable", condition.digest, answer)
        if persist is not None:
            self.persistent_cache.put(
                persist, {"satisfiable": answer[0], "witness": answer[1]}
            )

    # -- decision strategies ------------------------------------------------------

    def _decide(self, left: Expr, right: Expr) -> EquivalenceResult:
        if left == right:
            self.statistics.syntactic_hits += 1
            return EquivalenceResult(Verdict.EQUIVALENT, method="syntactic")

        left_fields = _field_widths(left)
        right_fields = _field_widths(right)

        if self.options.use_disjoint_field_filter:
            if left_fields and right_fields and not (set(left_fields) & set(right_fields)):
                self.statistics.disjoint_field_skips += 1
                return EquivalenceResult(Verdict.NOT_EQUIVALENT, method="disjoint-fields")

        all_fields = dict(left_fields)
        all_fields.update(right_fields)

        if left.width != right.width:
            return EquivalenceResult(Verdict.NOT_EQUIVALENT, method="width-mismatch")

        # Counterexample sampling.
        samples = 0
        rng = self._query_random(left, right)
        for assignment in self._assignments(all_fields, rng):
            samples += 1
            if evaluate(left, assignment) != evaluate(right, assignment):
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT,
                    method="sampling",
                    witness=dict(assignment),
                    samples_checked=samples,
                )

        total_bits = sum(all_fields.values())
        if total_bits <= self.options.exhaustive_bit_limit:
            self.statistics.exhaustive_queries += 1
            witness = self._exhaustive_mismatch(left, right, all_fields)
            if witness is not None:
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT, method="exhaustive", witness=witness
                )
            return EquivalenceResult(Verdict.EQUIVALENT, method="exhaustive")

        cost = estimate_blast_cost(left) + estimate_blast_cost(right)
        if cost <= self.options.sat_cost_budget:
            try:
                return self._sat_equivalence(left, right)
            except BlastError:
                pass

        self.statistics.sampling_fallbacks += 1
        return EquivalenceResult(
            Verdict.PROBABLY_EQUIVALENT, method="sampling", samples_checked=samples
        )

    # -- assignment generation ------------------------------------------------------

    def _query_random(self, *parts: Expr) -> random.Random:
        """A fresh RNG seeded by the query itself (plus the configured seed).

        Sampling must not consume a shared random stream: a query answered by
        a cache (in-memory or persistent) would then shift every later
        query's samples, making verdicts depend on cache warmth — and, at
        campaign scale, on sibling workers' timing.  Seeding from the
        interned nodes' structural digests (injective modulo SHA-1, unlike
        the paper rendering) keeps every verdict a pure function of
        (query, options); the digests are *sorted* so ``(A, B)`` and
        ``(B, A)`` — one query to both caches — also sample identically.
        Digests are content hashes computed bottom-up over the hash-consed
        DAG (see :attr:`repro.symbolic.expr.Expr.digest`), so they are
        stable across processes — and O(1) on every node the checker has
        already touched, where the old ``repr`` rendering re-walked the
        whole tree on every query.
        """
        key = "|".join([str(self.options.random_seed)] + sorted(p.digest for p in parts))
        return random.Random(key)

    def _assignments(self, fields: dict[str, int], rng: random.Random):
        """Corner-case and random assignments for the given fields."""
        if not fields:
            yield {}
            return
        paths = sorted(fields)
        for value in _CORNER_VALUES:
            yield {path: value & ((1 << fields[path]) - 1) for path in paths}
        # Max values per field.
        yield {path: (1 << fields[path]) - 1 for path in paths}
        for _ in range(self.options.sample_count):
            yield {
                path: rng.getrandbits(fields[path]) for path in paths
            }

    def _exhaustive_mismatch(
        self, left: Expr, right: Expr, fields: dict[str, int]
    ) -> Optional[dict[str, int]]:
        paths = sorted(fields)
        ranges = [range(1 << fields[path]) for path in paths]
        for values in itertools.product(*ranges):
            assignment = dict(zip(paths, values))
            if evaluate(left, assignment) != evaluate(right, assignment):
                return assignment
        return None

    def _sample_for_truth(
        self, condition: Expr, fields: dict[str, int], rng: random.Random
    ) -> Optional[dict[str, int]]:
        for assignment in self._assignments(fields, rng):
            if evaluate(condition, assignment):
                return dict(assignment)
        return None

    def _exhaustive_for_truth(
        self, condition: Expr, fields: dict[str, int]
    ) -> Optional[dict[str, int]]:
        paths = sorted(fields)
        ranges = [range(1 << fields[path]) for path in paths]
        for values in itertools.product(*ranges):
            assignment = dict(zip(paths, values))
            if evaluate(condition, assignment):
                return assignment
        return None

    # -- SAT-backed decisions -----------------------------------------------------------

    def _sat_equivalence(self, left: Expr, right: Expr) -> EquivalenceResult:
        """Decide ``left == right`` by asking the engine whether they differ.

        The difference condition is blasted into the session's shared solver
        and decided under an assumption literal, so learned clauses and the
        gates of shared subtrees carry over to every later query.
        """
        self.statistics.sat_queries += 1
        difference = builder.ne(left, right)
        outcome = self.engine.check_sat(difference)  # BlastError handled by caller
        if outcome.is_unsat:
            return EquivalenceResult(
                Verdict.EQUIVALENT, method="sat", sat_conflicts=outcome.conflicts
            )
        if outcome.is_sat and outcome.witness is not None:
            witness = dict(outcome.witness)
            # The SAT model may use bit patterns outside the sampled space;
            # double-check with the evaluator to produce a trustworthy witness.
            if evaluate(left, witness) != evaluate(right, witness):
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT,
                    method="sat",
                    witness=witness,
                    sat_conflicts=outcome.conflicts,
                )
        self.statistics.sampling_fallbacks += 1
        return EquivalenceResult(Verdict.PROBABLY_EQUIVALENT, method="sat-timeout")

    # -- statistics plumbing ------------------------------------------------------------

    def backend_statistics(self) -> dict[str, dict]:
        """Per-backend counters (queries, verdicts, conflicts, learned, time)."""
        return self.engine.backend_snapshot()


def _result_to_payload(result: EquivalenceResult) -> dict:
    """JSON-serialisable form of a verdict for the persistent cache."""
    return {
        "verdict": result.verdict.value,
        "method": result.method,
        "witness": result.witness,
        "samples_checked": result.samples_checked,
        "sat_conflicts": result.sat_conflicts,
    }


def _result_from_payload(payload: dict) -> EquivalenceResult:
    witness = payload.get("witness")
    return EquivalenceResult(
        verdict=Verdict(payload["verdict"]),
        method=payload.get("method", "persistent-cache"),
        # `witness is not None`, not truthiness: {} is a real witness for a
        # query over constant expressions (no free fields).
        witness=dict(witness) if witness is not None else None,
        samples_checked=payload.get("samples_checked", 0),
        sat_conflicts=payload.get("sat_conflicts", 0),
    )


def _field_widths(expr: Expr) -> dict[str, int]:
    """Map of input-field path -> width for all fields referenced by ``expr``.

    DAG traversal: each distinct (interned) node is inspected once, however
    many times it occurs in the tree.
    """
    widths: dict[str, int] = {}
    for node in expr.walk_unique():
        if isinstance(node, InputField):
            widths[node.path] = max(widths.get(node.path, 0), node.width)
    return widths
