"""Equivalence and satisfiability queries over symbolic expressions.

The CP Rewrite algorithm (paper Figure 7) calls ``SolverEquiv(E, E')`` to ask
whether an excised donor subexpression ``E`` and a recipient expression ``E'``
always evaluate to the same value.  The original system uses Z3; this
reproduction layers a hybrid decision procedure over the in-repo SAT solver:

1. **Syntactic check** — simplify both sides and compare structurally.
2. **Disjoint-fields filter** — the paper's first optimisation: if the two
   expressions depend on different sets of input fields the solver is not
   invoked at all (they are reported not equivalent).
3. **Counterexample sampling** — evaluate both expressions on corner-case and
   random field assignments; any mismatch is a definitive "not equivalent".
4. **Exhaustive enumeration** — when the total number of free input bits is
   small, enumerate every assignment (definitive either way).
5. **Bit-blasting + SAT** — when the estimated circuit size is within budget,
   decide ``E != E'`` exactly with the CDCL solver.
6. **Probabilistic fallback** — otherwise report *probably equivalent* based
   on the sampling evidence (the verdict records that it is unproven; the CP
   validation phase re-checks candidate patches dynamically anyway).

The paper's second optimisation — caching all solver queries — is implemented
by :class:`QueryCache`; together the two optimisations account for the
"order of magnitude reduction in the translation times" claim reproduced by
``benchmarks/bench_ablation_solver_cache.py``.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..symbolic import builder
from ..symbolic.evaluate import evaluate
from ..symbolic.expr import Binary, Expr, InputField, Kind, Unary
from ..symbolic.simplify import SimplifyOptions, simplify
from .bitblast import BitBlaster, BlastError, estimate_blast_cost
from .sat import Solver, Status


class Verdict(enum.Enum):
    """Outcome of an equivalence query."""

    EQUIVALENT = "equivalent"                  # proved
    NOT_EQUIVALENT = "not-equivalent"          # proved (witness available)
    PROBABLY_EQUIVALENT = "probably-equivalent"  # sampling only, unproven

    @property
    def accepts(self) -> bool:
        """Whether the rewrite algorithm may use this verdict as a match."""
        return self in (Verdict.EQUIVALENT, Verdict.PROBABLY_EQUIVALENT)

    @property
    def proved(self) -> bool:
        return self in (Verdict.EQUIVALENT, Verdict.NOT_EQUIVALENT)


@dataclass
class EquivalenceResult:
    """Verdict plus supporting evidence for one equivalence query."""

    verdict: Verdict
    method: str
    witness: Optional[dict[str, int]] = None
    samples_checked: int = 0
    sat_conflicts: int = 0


@dataclass
class SolverStatistics:
    """Counters used by the solver-optimisation ablation benchmark."""

    queries: int = 0
    cache_hits: int = 0
    persistent_cache_hits: int = 0
    disjoint_field_skips: int = 0
    syntactic_hits: int = 0
    exhaustive_queries: int = 0
    sat_queries: int = 0
    sampling_fallbacks: int = 0
    satisfiability_queries: int = 0

    @property
    def solver_invocations(self) -> int:
        """Queries that actually reached an expensive decision procedure."""
        return self.exhaustive_queries + self.sat_queries + self.sampling_fallbacks

    @property
    def evaluated_queries(self) -> int:
        """Queries that were not answered by a cache or the field filter.

        This is the quantity the paper's two optimisations reduce "by an order
        of magnitude": every remaining query requires at least simplification
        and counterexample sampling, and possibly an exhaustive or SAT call.
        """
        return (
            self.queries
            - self.cache_hits
            - self.persistent_cache_hits
            - self.disjoint_field_skips
        )


class QueryCache:
    """Memoises equivalence verdicts keyed by the (simplified) query pair.

    Expressions are hash-consed, so the pair key hashes and compares by
    object identity — O(1) per probe, where the pre-interning IR paid a full
    structural hash and deep comparison on every lookup.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[Expr, Expr], EquivalenceResult] = {}

    def get(self, left: Expr, right: Expr) -> Optional[EquivalenceResult]:
        result = self._entries.get((left, right))
        if result is None:
            result = self._entries.get((right, left))
        return result

    def put(self, left: Expr, right: Expr, result: EquivalenceResult) -> None:
        self._entries[(left, right)] = result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class EquivalenceOptions:
    """Tuning knobs; the ablation benchmark flips the two paper optimisations."""

    use_cache: bool = True
    use_disjoint_field_filter: bool = True
    sample_count: int = 48
    exhaustive_bit_limit: int = 16
    #: Queries whose estimated circuit exceeds this are answered by sampling;
    #: wide multiplier-equivalence instances are SAT-hostile, so the budget is
    #: deliberately below the cost of a 32x32 multiplication.
    sat_cost_budget: int = 2000
    sat_conflict_limit: int = 5000
    random_seed: int = 0x0C0DE
    #: When set, equivalence verdicts are shared across checkers *and*
    #: processes through an append-only JSONL cache at this path (the §3.3
    #: query-cache optimisation at campaign scale; see
    #: :mod:`repro.campaign.cache`).
    persistent_cache_path: Optional[str] = None


_CORNER_VALUES = (0, 1, 2, 3, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF, 0x10000)

#: Verdict methods cheaper to recompute than to round-trip through the
#: persistent cache.
_CHEAP_METHODS = frozenset({"syntactic", "disjoint-fields", "width-mismatch"})

#: Folded into every persistent-cache namespace.  Bump this when the decision
#: procedures change semantically (simplifier, sampling, bit-blasting, SAT)
#: or when the key derivation changes: cached verdicts from older code then
#: stop matching and are recomputed, instead of being silently replayed
#: against new semantics.
#:
#: Version history: 1 = repr-derived keys and repr-seeded sampling;
#: 2 = interned-node digest keys and digest-seeded sampling (PR 2).
CACHE_SCHEMA_VERSION = 2


class EquivalenceChecker:
    """Hybrid equivalence/satisfiability engine with query caching."""

    def __init__(
        self,
        options: EquivalenceOptions = EquivalenceOptions(),
        simplify_options: SimplifyOptions = SimplifyOptions(),
    ) -> None:
        self.options = options
        self.simplify_options = simplify_options
        self.cache = QueryCache()
        self.statistics = SolverStatistics()
        self.persistent_cache = None
        if options.persistent_cache_path:
            # Imported lazily: the campaign package depends on the solver.
            from ..campaign.cache import PersistentSolverCache, query_key

            self._query_key = query_key
            self.persistent_cache = PersistentSolverCache(options.persistent_cache_path)
            # Verdicts are only valid under the options that produced them
            # (sampling depth, SAT budgets, ...), so checkers with different
            # options must not share entries even when they share the file.
            self._cache_namespace = ":".join(
                str(value)
                for value in (
                    CACHE_SCHEMA_VERSION,
                    options.use_disjoint_field_filter,
                    options.sample_count,
                    options.exhaustive_bit_limit,
                    options.sat_cost_budget,
                    options.sat_conflict_limit,
                    options.random_seed,
                )
            )

    # -- public API ------------------------------------------------------------

    def equivalent(self, left: Expr, right: Expr) -> EquivalenceResult:
        """Decide whether ``left`` and ``right`` always evaluate equally."""
        self.statistics.queries += 1
        left_simplified = simplify(left, self.simplify_options)
        right_simplified = simplify(right, self.simplify_options)

        if self.options.use_cache:
            cached = self.cache.get(left_simplified, right_simplified)
            if cached is not None:
                self.statistics.cache_hits += 1
                return cached

        persistent_key = None
        if self.persistent_cache is not None:
            persistent_key = (
                self._cache_namespace
                + "##"
                + self._query_key(left_simplified, right_simplified)
            )
            payload = self.persistent_cache.get(persistent_key)
            if payload is not None:
                self.statistics.persistent_cache_hits += 1
                result = _result_from_payload(payload)
                if self.options.use_cache:
                    self.cache.put(left_simplified, right_simplified, result)
                return result

        result = self._decide(left_simplified, right_simplified)

        if persistent_key is not None and result.method not in _CHEAP_METHODS:
            # Trivially recomputable verdicts are not worth a locked append
            # and a cache line carrying both expression reprs.
            self.persistent_cache.put(persistent_key, _result_to_payload(result))
        if self.options.use_cache:
            self.cache.put(left_simplified, right_simplified, result)
        return result

    def satisfiable(self, condition: Expr) -> tuple[bool, Optional[dict[str, int]]]:
        """Decide whether a width-1 condition has a satisfying field assignment.

        Used by the overflow-specific validation step (:mod:`repro.solver.overflow`).
        Returns ``(satisfiable, witness_or_None)``; when the formula is too
        large for SAT the answer is based on sampling (a found witness is
        always genuine; absence of a witness is then only probabilistic).
        """
        self.statistics.satisfiability_queries += 1
        condition = simplify(condition, self.simplify_options)
        fields = _field_widths(condition)

        # Sampling first: cheap and yields real witnesses.
        witness = self._sample_for_truth(condition, fields, self._query_random(condition))
        if witness is not None:
            return True, witness

        total_bits = sum(fields.values())
        if total_bits <= self.options.exhaustive_bit_limit:
            found = self._exhaustive_for_truth(condition, fields)
            return (found is not None), found

        if estimate_blast_cost(condition) <= self.options.sat_cost_budget:
            try:
                return self._sat_for_truth(condition)
            except BlastError:
                pass
        return False, None

    # -- decision strategies ------------------------------------------------------

    def _decide(self, left: Expr, right: Expr) -> EquivalenceResult:
        if left == right:
            self.statistics.syntactic_hits += 1
            return EquivalenceResult(Verdict.EQUIVALENT, method="syntactic")

        left_fields = _field_widths(left)
        right_fields = _field_widths(right)

        if self.options.use_disjoint_field_filter:
            if left_fields and right_fields and not (set(left_fields) & set(right_fields)):
                self.statistics.disjoint_field_skips += 1
                return EquivalenceResult(Verdict.NOT_EQUIVALENT, method="disjoint-fields")

        all_fields = dict(left_fields)
        all_fields.update(right_fields)

        if left.width != right.width:
            return EquivalenceResult(Verdict.NOT_EQUIVALENT, method="width-mismatch")

        # Counterexample sampling.
        samples = 0
        rng = self._query_random(left, right)
        for assignment in self._assignments(all_fields, rng):
            samples += 1
            if evaluate(left, assignment) != evaluate(right, assignment):
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT,
                    method="sampling",
                    witness=dict(assignment),
                    samples_checked=samples,
                )

        total_bits = sum(all_fields.values())
        if total_bits <= self.options.exhaustive_bit_limit:
            self.statistics.exhaustive_queries += 1
            witness = self._exhaustive_mismatch(left, right, all_fields)
            if witness is not None:
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT, method="exhaustive", witness=witness
                )
            return EquivalenceResult(Verdict.EQUIVALENT, method="exhaustive")

        cost = estimate_blast_cost(left) + estimate_blast_cost(right)
        if cost <= self.options.sat_cost_budget:
            try:
                return self._sat_equivalence(left, right)
            except BlastError:
                pass

        self.statistics.sampling_fallbacks += 1
        return EquivalenceResult(
            Verdict.PROBABLY_EQUIVALENT, method="sampling", samples_checked=samples
        )

    # -- assignment generation ------------------------------------------------------

    def _query_random(self, *parts: Expr) -> random.Random:
        """A fresh RNG seeded by the query itself (plus the configured seed).

        Sampling must not consume a shared random stream: a query answered by
        a cache (in-memory or persistent) would then shift every later
        query's samples, making verdicts depend on cache warmth — and, at
        campaign scale, on sibling workers' timing.  Seeding from the
        interned nodes' structural digests (injective modulo SHA-1, unlike
        the paper rendering) keeps every verdict a pure function of
        (query, options); the digests are *sorted* so ``(A, B)`` and
        ``(B, A)`` — one query to both caches — also sample identically.
        Digests are content hashes computed bottom-up over the hash-consed
        DAG (see :attr:`repro.symbolic.expr.Expr.digest`), so they are
        stable across processes — and O(1) on every node the checker has
        already touched, where the old ``repr`` rendering re-walked the
        whole tree on every query.
        """
        key = "|".join([str(self.options.random_seed)] + sorted(p.digest for p in parts))
        return random.Random(key)

    def _assignments(self, fields: dict[str, int], rng: random.Random):
        """Corner-case and random assignments for the given fields."""
        if not fields:
            yield {}
            return
        paths = sorted(fields)
        for value in _CORNER_VALUES:
            yield {path: value & ((1 << fields[path]) - 1) for path in paths}
        # Max values per field.
        yield {path: (1 << fields[path]) - 1 for path in paths}
        for _ in range(self.options.sample_count):
            yield {
                path: rng.getrandbits(fields[path]) for path in paths
            }

    def _exhaustive_mismatch(
        self, left: Expr, right: Expr, fields: dict[str, int]
    ) -> Optional[dict[str, int]]:
        paths = sorted(fields)
        ranges = [range(1 << fields[path]) for path in paths]
        for values in itertools.product(*ranges):
            assignment = dict(zip(paths, values))
            if evaluate(left, assignment) != evaluate(right, assignment):
                return assignment
        return None

    def _sample_for_truth(
        self, condition: Expr, fields: dict[str, int], rng: random.Random
    ) -> Optional[dict[str, int]]:
        for assignment in self._assignments(fields, rng):
            if evaluate(condition, assignment):
                return dict(assignment)
        return None

    def _exhaustive_for_truth(
        self, condition: Expr, fields: dict[str, int]
    ) -> Optional[dict[str, int]]:
        paths = sorted(fields)
        ranges = [range(1 << fields[path]) for path in paths]
        for values in itertools.product(*ranges):
            assignment = dict(zip(paths, values))
            if evaluate(condition, assignment):
                return assignment
        return None

    # -- SAT-backed decisions -----------------------------------------------------------

    def _sat_equivalence(self, left: Expr, right: Expr) -> EquivalenceResult:
        self.statistics.sat_queries += 1
        blaster = BitBlaster()
        difference = builder.ne(left, right)
        bit = blaster.blast(difference)[0]
        blaster.assert_bit(bit, True)

        solver = Solver()
        solver.ensure_vars(blaster.cnf.num_vars)
        for clause in blaster.cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve(max_conflicts=self.options.sat_conflict_limit)
        if result.status is Status.UNSAT:
            return EquivalenceResult(
                Verdict.EQUIVALENT, method="sat", sat_conflicts=result.conflicts
            )
        if result.status is Status.SAT:
            witness = blaster.field_assignment(result.model)
            # The SAT model may use bit patterns outside the sampled space;
            # double-check with the evaluator to produce a trustworthy witness.
            if evaluate(left, witness) != evaluate(right, witness):
                return EquivalenceResult(
                    Verdict.NOT_EQUIVALENT,
                    method="sat",
                    witness=witness,
                    sat_conflicts=result.conflicts,
                )
        self.statistics.sampling_fallbacks += 1
        return EquivalenceResult(Verdict.PROBABLY_EQUIVALENT, method="sat-timeout")

    def _sat_for_truth(self, condition: Expr) -> tuple[bool, Optional[dict[str, int]]]:
        blaster = BitBlaster()
        bit = blaster.blast(condition)[0]
        blaster.assert_bit(bit, True)
        solver = Solver()
        solver.ensure_vars(blaster.cnf.num_vars)
        for clause in blaster.cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve(max_conflicts=self.options.sat_conflict_limit)
        if result.status is Status.SAT:
            witness = blaster.field_assignment(result.model)
            if evaluate(condition, witness):
                return True, witness
            return True, None
        if result.status is Status.UNSAT:
            return False, None
        return False, None


def _result_to_payload(result: EquivalenceResult) -> dict:
    """JSON-serialisable form of a verdict for the persistent cache."""
    return {
        "verdict": result.verdict.value,
        "method": result.method,
        "witness": result.witness,
        "samples_checked": result.samples_checked,
        "sat_conflicts": result.sat_conflicts,
    }


def _result_from_payload(payload: dict) -> EquivalenceResult:
    witness = payload.get("witness")
    return EquivalenceResult(
        verdict=Verdict(payload["verdict"]),
        method=payload.get("method", "persistent-cache"),
        # `witness is not None`, not truthiness: {} is a real witness for a
        # query over constant expressions (no free fields).
        witness=dict(witness) if witness is not None else None,
        samples_checked=payload.get("samples_checked", 0),
        sat_conflicts=payload.get("sat_conflicts", 0),
    )


def _field_widths(expr: Expr) -> dict[str, int]:
    """Map of input-field path -> width for all fields referenced by ``expr``.

    DAG traversal: each distinct (interned) node is inspected once, however
    many times it occurs in the tree.
    """
    widths: dict[str, int] = {}
    for node in expr.walk_unique():
        if isinstance(node, InputField):
            widths[node.path] = max(widths.get(node.path, 0), node.width)
    return widths
