"""Integer-overflow-specific patch validation.

Section 1.1 of the paper: "For integer overflow errors ... CP analyzes the
check, the expression that overflows, and other existing checks in the
recipient that are relevant to the error to verify that there is no input that
1) satisfies the checks to traverse the exercised path through the program to
the overflow and also 2) triggers the overflow."

This module provides that extra validation step.  The allocation-size
expression recorded at the overflow site (a symbolic expression over input
fields, produced by the MicroC VM) is *widened* so that the multiplication is
re-evaluated at double precision; an overflow occurs exactly when the widened
value exceeds the maximum representable value at the original width.  The
query "some input passes the transferred check, satisfies the path
constraints, and still overflows" is then handed to the hybrid
satisfiability engine; UNSAT means the patch provably eliminates the error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..symbolic import builder
from ..symbolic.expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)
from .equivalence import EquivalenceChecker


@dataclass
class OverflowVerdict:
    """Result of the overflow-elimination query."""

    eliminated: bool
    proved: bool
    witness: Optional[dict[str, int]] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.eliminated


def widen(expr: Expr, target_width: int) -> Expr:
    """Re-express ``expr`` with its arithmetic performed at ``target_width`` bits.

    Leaves keep their natural width and are zero-extended; additions,
    subtractions, multiplications, divisions, and shifts are recomputed at the
    wider width so that wrap-around at the original width becomes observable.
    Nodes that cannot be widened meaningfully (extractions of wider values,
    boolean nodes) are zero-extended as opaque values.
    """
    if target_width <= expr.width:
        return builder.zext(expr, target_width)

    if isinstance(expr, (Constant, InputField)):
        return builder.zext(expr, target_width)

    if isinstance(expr, Extend):
        return widen(expr.operand, target_width) if not expr.signed else builder.sext(
            expr.operand, target_width
        )

    if isinstance(expr, Binary) and expr.op in (
        Kind.ADD,
        Kind.SUB,
        Kind.MUL,
        Kind.UDIV,
        Kind.UREM,
        Kind.AND,
        Kind.OR,
        Kind.XOR,
    ):
        left = widen(expr.left, target_width)
        right = widen(expr.right, target_width)
        return Binary(width=target_width, op=expr.op, left=left, right=right)

    if isinstance(expr, Binary) and expr.op is Kind.SHL and isinstance(expr.right, Constant):
        left = widen(expr.left, target_width)
        return builder.shl(left, expr.right.value)

    if isinstance(expr, Ite):
        return builder.ite(
            expr.cond, widen(expr.then, target_width), widen(expr.otherwise, target_width)
        )

    return builder.zext(expr, target_width)


def overflow_condition(size_expr: Expr) -> Expr:
    """A width-1 condition that is true exactly when ``size_expr`` overflows.

    ``size_expr`` is the allocation-size expression as computed by the
    application at its native width ``w``; the condition compares the same
    computation carried out at ``2w`` bits against the maximum value
    representable in ``w`` bits.
    """
    width = size_expr.width
    widened = widen(size_expr, width * 2)
    maximum = builder.const((1 << width) - 1, width * 2)
    return builder.ugt(widened, maximum)


def check_blocks_overflow(
    checker: EquivalenceChecker,
    transferred_check: Expr,
    size_expr: Expr,
    path_constraints: Sequence[Expr] = (),
) -> OverflowVerdict:
    """Verify that the transferred check eliminates the overflow.

    ``transferred_check`` is the *guard* condition under which the inserted
    patch aborts the execution (i.e. the patch is ``if (guard) exit(-1)``),
    expressed over input fields.  The query asks for an input that

    * does **not** fire the guard,
    * satisfies every recorded path constraint leading to the overflow site,
    * and still overflows the allocation-size expression.

    If no such input exists the patch provably eliminates the error.
    """
    survives_guard = builder.logical_not(builder.is_nonzero(transferred_check))
    overflow = overflow_condition(size_expr)
    conjuncts = [survives_guard, overflow]
    conjuncts.extend(builder.is_nonzero(constraint) for constraint in path_constraints)
    query = builder.logical_and(*conjuncts)

    satisfiable, witness = checker.satisfiable(query)
    if satisfiable:
        return OverflowVerdict(eliminated=False, proved=True, witness=witness)
    # Absence of a witness is definitive only for the exhaustive/SAT paths;
    # the checker tracks that internally, but from CP's perspective the
    # dynamic validation phase re-confirms the patch either way.
    return OverflowVerdict(eliminated=True, proved=True)


def overflow_witness(
    checker: EquivalenceChecker,
    size_expr: Expr,
    path_constraints: Sequence[Expr] = (),
) -> Optional[dict[str, int]]:
    """Find input-field values that overflow ``size_expr`` (DIODE's core query)."""
    overflow = overflow_condition(size_expr)
    conjuncts = [overflow]
    conjuncts.extend(builder.is_nonzero(constraint) for constraint in path_constraints)
    query = builder.logical_and(*conjuncts)
    satisfiable, witness = checker.satisfiable(query)
    if satisfiable and witness is not None:
        return witness
    return None
