"""Bit-blasting of symbolic bitvector expressions to CNF.

The equivalence checker reduces "are these two expressions always equal?" to
the unsatisfiability of ``E1 != E2`` and hands the resulting propositional
formula to the CDCL solver.  This module performs the reduction: every bit of
every intermediate bitvector becomes a propositional variable (or a constant),
and each operator is encoded with Tseitin-style gate clauses.

The encoding covers the full operator set of :mod:`repro.symbolic.expr`,
including multiplication (shift-and-add) and division/remainder (restoring
division), so the SAT path is complete; the equivalence layer simply bounds
the size of blasted formulas and falls back to exhaustive/randomised
evaluation when a query would be too large (wide multiplications are the
classic SAT-hostile case).

Bit semantics exactly mirror :func:`repro.symbolic.evaluate.evaluate`
(property-tested in ``tests/solver/test_bitblast_properties.py``).

Expressions are hash-consed (:mod:`repro.symbolic.expr`), so the blaster's
per-expression cache is an identity-keyed memo over the DAG: a subtree shared
by both sides of an equivalence query — or appearing many times inside one
check — is translated to gates once, and every further occurrence reuses the
same CNF literals (which also yields a smaller, easier formula than
re-encoding the subcircuit).  :attr:`BitBlaster.nodes_visited` counts actual
translations (cache misses) for the interning benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from ..symbolic.expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
    register_clear_callback,
)

#: A bit is either a Python bool (known constant) or a CNF literal (int).
Bit = Union[bool, int]


class BlastError(Exception):
    """Raised when an expression cannot be bit-blasted (e.g. odd shift widths)."""


@dataclass
class CNF:
    """A CNF formula under construction."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, *literals: int) -> None:
        self.clauses.append(list(literals))


class BitBlaster:
    """Translates expressions into CNF over per-bit variables."""

    def __init__(self) -> None:
        self.cnf = CNF()
        self._field_bits: dict[str, list[int]] = {}
        self._field_widths: dict[str, int] = {}
        #: Identity-keyed (nodes are interned) memo: node -> its bit vector.
        self._cache: dict[Expr, list[Bit]] = {}
        #: Distinct nodes actually translated (cache misses); benchmarks
        #: compare this against the tree size to show shared-subtree wins.
        self.nodes_visited = 0
        # Journals for snapshot/rollback (None when no episode is open).
        self._journal_nodes: "list[Expr] | None" = None
        self._journal_fields: "list[str] | None" = None

    # -- snapshot / rollback ----------------------------------------------------

    def snapshot(self) -> tuple[int, int]:
        """Open a rollbackable episode; new cache/field entries are journaled.

        A long-lived blaster shared across queries (the incremental
        validation engine) must not keep the half-translated state of a
        blast that failed partway — orphan gate clauses would be fed to the
        solver as dead weight, and partially registered field widths would
        force unrelated later queries into width clashes.
        """
        self._journal_nodes = []
        self._journal_fields = []
        return (len(self.cnf.clauses), self.cnf.num_vars)

    def commit(self) -> None:
        """Close the episode, keeping everything it added."""
        self._journal_nodes = None
        self._journal_fields = None

    def rollback(self, mark: tuple[int, int]) -> None:
        """Discard everything added since the matching :meth:`snapshot`."""
        clause_count, num_vars = mark
        del self.cnf.clauses[clause_count:]
        self.cnf.num_vars = num_vars
        for node in self._journal_nodes or ():
            self._cache.pop(node, None)
        for path in self._journal_fields or ():
            self._field_bits.pop(path, None)
            self._field_widths.pop(path, None)
        self.commit()

    # -- field variables -----------------------------------------------------

    def field_bits(self, path: str, width: int) -> list[int]:
        """CNF variables for the bits of input field ``path`` (LSB first)."""
        if path in self._field_bits:
            if self._field_widths[path] != width:
                raise BlastError(
                    f"field {path!r} used at widths {self._field_widths[path]} and {width}"
                )
            return self._field_bits[path]
        bits = [self.cnf.new_var() for _ in range(width)]
        self._field_bits[path] = bits
        self._field_widths[path] = width
        if self._journal_fields is not None:
            self._journal_fields.append(path)
        return bits

    def field_assignment(self, model: Mapping[int, bool]) -> dict[str, int]:
        """Decode a SAT model into concrete input-field values."""
        assignment = {}
        for path, bits in self._field_bits.items():
            value = 0
            for index, literal in enumerate(bits):
                if model.get(literal, False):
                    value |= 1 << index
            assignment[path] = value
        return assignment

    # -- gate primitives -------------------------------------------------------

    def _not(self, a: Bit) -> Bit:
        if isinstance(a, bool):
            return not a
        return -a

    def _and(self, a: Bit, b: Bit) -> Bit:
        if isinstance(a, bool):
            return b if a else False
        if isinstance(b, bool):
            return a if b else False
        if a == b:
            return a
        if a == -b:
            return False
        out = self.cnf.new_var()
        self.cnf.add_clause(-a, -b, out)
        self.cnf.add_clause(a, -out)
        self.cnf.add_clause(b, -out)
        return out

    def _or(self, a: Bit, b: Bit) -> Bit:
        return self._not(self._and(self._not(a), self._not(b)))

    def _xor(self, a: Bit, b: Bit) -> Bit:
        if isinstance(a, bool):
            return self._not(b) if a else b
        if isinstance(b, bool):
            return self._not(a) if b else a
        if a == b:
            return False
        if a == -b:
            return True
        out = self.cnf.new_var()
        self.cnf.add_clause(-a, -b, -out)
        self.cnf.add_clause(a, b, -out)
        self.cnf.add_clause(a, -b, out)
        self.cnf.add_clause(-a, b, out)
        return out

    def _mux(self, select: Bit, when_true: Bit, when_false: Bit) -> Bit:
        """``select ? when_true : when_false``."""
        if isinstance(select, bool):
            return when_true if select else when_false
        return self._or(self._and(select, when_true), self._and(self._not(select), when_false))

    def assert_bit(self, bit: Bit, value: bool = True) -> None:
        """Constrain ``bit`` to the given truth value."""
        if isinstance(bit, bool):
            if bit != value:
                # Contradiction: add an empty-clause equivalent.
                fresh = self.cnf.new_var()
                self.cnf.add_clause(fresh)
                self.cnf.add_clause(-fresh)
            return
        self.cnf.add_clause(bit if value else -bit)

    # -- word-level primitives --------------------------------------------------

    def _const_bits(self, value: int, width: int) -> list[Bit]:
        return [bool((value >> index) & 1) for index in range(width)]

    def _adder(self, a: Sequence[Bit], b: Sequence[Bit], carry_in: Bit = False) -> list[Bit]:
        result = []
        carry = carry_in
        for bit_a, bit_b in zip(a, b):
            partial = self._xor(bit_a, bit_b)
            result.append(self._xor(partial, carry))
            carry = self._or(self._and(bit_a, bit_b), self._and(partial, carry))
        return result

    def _negate(self, a: Sequence[Bit]) -> list[Bit]:
        inverted = [self._not(bit) for bit in a]
        return self._adder(inverted, self._const_bits(1, len(a)))

    def _subtract(self, a: Sequence[Bit], b: Sequence[Bit]) -> list[Bit]:
        inverted = [self._not(bit) for bit in b]
        return self._adder(a, inverted, carry_in=True)

    def _multiply(self, a: Sequence[Bit], b: Sequence[Bit]) -> list[Bit]:
        width = len(a)
        accumulator: list[Bit] = self._const_bits(0, width)
        for shift, b_bit in enumerate(b):
            if isinstance(b_bit, bool) and not b_bit:
                continue
            partial: list[Bit] = [False] * shift + [
                self._and(a_bit, b_bit) for a_bit in a[: width - shift]
            ]
            accumulator = self._adder(accumulator, partial)
        return accumulator

    def _unsigned_less(self, a: Sequence[Bit], b: Sequence[Bit]) -> Bit:
        """a < b (unsigned)."""
        less: Bit = False
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            equal = self._not(self._xor(bit_a, bit_b))
            less = self._or(self._and(self._not(bit_a), bit_b), self._and(equal, less))
        return less

    def _equal(self, a: Sequence[Bit], b: Sequence[Bit]) -> Bit:
        result: Bit = True
        for bit_a, bit_b in zip(a, b):
            result = self._and(result, self._not(self._xor(bit_a, bit_b)))
        return result

    def _signed_less(self, a: Sequence[Bit], b: Sequence[Bit]) -> Bit:
        sign_a, sign_b = a[-1], b[-1]
        unsigned = self._unsigned_less(a, b)
        differ = self._xor(sign_a, sign_b)
        # If signs differ, a < b iff a is negative; otherwise unsigned comparison works.
        return self._mux(differ, sign_a, unsigned)

    def _mux_word(self, select: Bit, when_true: Sequence[Bit], when_false: Sequence[Bit]) -> list[Bit]:
        return [self._mux(select, t, f) for t, f in zip(when_true, when_false)]

    def _is_zero(self, a: Sequence[Bit]) -> Bit:
        any_set: Bit = False
        for bit in a:
            any_set = self._or(any_set, bit)
        return self._not(any_set)

    def _udivrem(self, a: Sequence[Bit], b: Sequence[Bit]) -> tuple[list[Bit], list[Bit]]:
        """Restoring division: returns (quotient, remainder) ignoring b == 0.

        The working remainder uses ``width + 1`` bits because after the shift
        step it can transiently exceed ``width`` bits.
        """
        width = len(a)
        wide_b: list[Bit] = list(b) + [False]
        remainder: list[Bit] = self._const_bits(0, width + 1)
        quotient: list[Bit] = [False] * width
        for index in range(width - 1, -1, -1):
            remainder = [a[index]] + remainder[:-1]
            trial = self._subtract(remainder, wide_b)
            no_borrow = self._not(self._unsigned_less(remainder, wide_b))
            remainder = self._mux_word(no_borrow, trial, remainder)
            quotient[index] = no_borrow
        return quotient, remainder[:width]

    def _shift(self, a: Sequence[Bit], amount: Sequence[Bit], kind: Kind) -> list[Bit]:
        width = len(a)
        if width & (width - 1):
            raise BlastError(f"non-constant shifts require power-of-two widths, got {width}")
        log_width = width.bit_length() - 1
        fill: Bit = a[-1] if kind is Kind.ASHR else False
        result = list(a)
        for stage in range(log_width):
            shift_by = 1 << stage
            select = amount[stage]
            if kind is Kind.SHL:
                shifted = [fill] * 0 + [False] * shift_by + result[: width - shift_by]
            else:
                shifted = result[shift_by:] + [fill] * shift_by
            result = self._mux_word(select, shifted, result)
        overshift: Bit = False
        for bit in amount[log_width:]:
            overshift = self._or(overshift, bit)
        overshift_result = [fill] * width if kind is Kind.ASHR else self._const_bits(0, width)
        return self._mux_word(overshift, overshift_result, result)

    # -- expression translation ----------------------------------------------------

    def blast(self, expr: Expr) -> list[Bit]:
        """Bits (LSB first) representing ``expr``."""
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        self.nodes_visited += 1
        bits = self._blast(expr)
        if len(bits) != expr.width:
            raise BlastError(
                f"internal error: blasted width {len(bits)} != expression width {expr.width}"
            )
        self._cache[expr] = bits
        if self._journal_nodes is not None:
            self._journal_nodes.append(expr)
        return bits

    def _blast(self, expr: Expr) -> list[Bit]:
        if isinstance(expr, Constant):
            return self._const_bits(expr.value, expr.width)

        if isinstance(expr, InputField):
            return list(self.field_bits(expr.path, expr.width))

        if isinstance(expr, Unary):
            operand = self.blast(expr.operand)
            if expr.op is Kind.NEG:
                return self._negate(operand)
            if expr.op is Kind.NOT:
                return [self._not(bit) for bit in operand]
            if expr.op is Kind.LOGICAL_NOT:
                return [self._not(operand[0])]
            raise BlastError(f"unsupported unary operator {expr.op}")

        if isinstance(expr, Extract):
            operand = self.blast(expr.operand)
            return operand[expr.lo : expr.hi + 1]

        if isinstance(expr, Extend):
            operand = self.blast(expr.operand)
            pad = expr.width - expr.operand.width
            fill: Bit = operand[-1] if expr.signed else False
            return list(operand) + [fill] * pad

        if isinstance(expr, Concat):
            bits: list[Bit] = []
            for part in reversed(expr.parts):
                bits.extend(self.blast(part))
            return bits

        if isinstance(expr, Ite):
            condition = self.blast(expr.cond)[0]
            then = self.blast(expr.then)
            otherwise = self.blast(expr.otherwise)
            return self._mux_word(condition, then, otherwise)

        if isinstance(expr, Binary):
            return self._blast_binary(expr)

        raise BlastError(f"unsupported expression node {type(expr).__name__}")

    def _blast_binary(self, expr: Binary) -> list[Bit]:
        op = expr.op
        left = self.blast(expr.left)
        right = self.blast(expr.right)
        width = expr.left.width

        if op is Kind.ADD:
            return self._adder(left, right)
        if op is Kind.SUB:
            return self._subtract(left, right)
        if op is Kind.MUL:
            return self._multiply(left, right)
        if op in (Kind.UDIV, Kind.UREM, Kind.SDIV, Kind.SREM):
            return self._blast_division(op, left, right, width)
        if op is Kind.AND:
            return [self._and(a, b) for a, b in zip(left, right)]
        if op is Kind.OR:
            return [self._or(a, b) for a, b in zip(left, right)]
        if op is Kind.XOR:
            return [self._xor(a, b) for a, b in zip(left, right)]
        if op in (Kind.SHL, Kind.LSHR, Kind.ASHR):
            if isinstance(expr.right, Constant):
                shift = expr.right.value
                fill: Bit = left[-1] if op is Kind.ASHR else False
                if shift >= width:
                    return [fill] * width if op is Kind.ASHR else self._const_bits(0, width)
                if op is Kind.SHL:
                    return [False] * shift + list(left[: width - shift])
                return list(left[shift:]) + [fill] * shift
            return self._shift(left, right, op)

        if op is Kind.EQ:
            return [self._equal(left, right)]
        if op is Kind.NE:
            return [self._not(self._equal(left, right))]
        if op is Kind.ULT:
            return [self._unsigned_less(left, right)]
        if op is Kind.ULE:
            return [self._not(self._unsigned_less(right, left))]
        if op is Kind.UGT:
            return [self._unsigned_less(right, left)]
        if op is Kind.UGE:
            return [self._not(self._unsigned_less(left, right))]
        if op is Kind.SLT:
            return [self._signed_less(left, right)]
        if op is Kind.SLE:
            return [self._not(self._signed_less(right, left))]
        if op is Kind.SGT:
            return [self._signed_less(right, left)]
        if op is Kind.SGE:
            return [self._not(self._signed_less(left, right))]
        if op is Kind.BOOL_AND:
            return [self._and(left[0], right[0])]
        if op is Kind.BOOL_OR:
            return [self._or(left[0], right[0])]

        raise BlastError(f"unsupported binary operator {op}")

    def _blast_division(
        self, op: Kind, left: list[Bit], right: list[Bit], width: int
    ) -> list[Bit]:
        divisor_zero = self._is_zero(right)
        if op in (Kind.UDIV, Kind.UREM):
            quotient, remainder = self._udivrem(left, right)
            if op is Kind.UDIV:
                return self._mux_word(divisor_zero, self._const_bits((1 << width) - 1, width), quotient)
            return self._mux_word(divisor_zero, list(left), remainder)

        # Signed: operate on magnitudes, then fix the signs (C-style truncation).
        sign_left, sign_right = left[-1], right[-1]
        abs_left = self._mux_word(sign_left, self._negate(left), list(left))
        abs_right = self._mux_word(sign_right, self._negate(right), list(right))
        quotient, remainder = self._udivrem(abs_left, abs_right)
        if op is Kind.SDIV:
            negate_quotient = self._xor(sign_left, sign_right)
            signed_quotient = self._mux_word(negate_quotient, self._negate(quotient), quotient)
            return self._mux_word(
                divisor_zero, self._const_bits((1 << width) - 1, width), signed_quotient
            )
        signed_remainder = self._mux_word(sign_left, self._negate(remainder), remainder)
        return self._mux_word(divisor_zero, list(left), signed_remainder)


#: node -> estimated gate cost of its whole tree; identity-keyed DAG memo.
_COST_MEMO: dict[Expr, int] = {}

register_clear_callback(_COST_MEMO.clear)


def _node_cost(node: Expr) -> int:
    if isinstance(node, Binary) and node.op in (
        Kind.UDIV,
        Kind.SDIV,
        Kind.UREM,
        Kind.SREM,
    ):
        # Restoring division builds `width` serial subtract/compare stages,
        # each of width gates, feeding a SAT-hostile circuit: treat it as
        # cubic so wide divisions fall back to sampling.
        return node.width * node.width * node.width
    if isinstance(node, Binary) and node.op is Kind.MUL:
        return node.width * node.width
    if isinstance(node, Binary) and node.op in (Kind.SHL, Kind.LSHR, Kind.ASHR):
        if isinstance(node.right, Constant):
            return node.width
        return node.width * max(node.width.bit_length() - 1, 1)
    return node.width


def estimate_blast_cost(expr: Expr) -> int:
    """A rough gate-count estimate used to decide whether to attempt SAT.

    Multiplication and division cost ``width**2`` (``width**3`` for
    division); everything else costs ``width``.  The equivalence checker
    compares the sum against a budget.  The total is over the expression
    *tree* (unchanged by interning), but the recursion is memoised per
    distinct node, so repeated estimates of overlapping queries are O(new
    nodes) instead of O(tree).
    """
    cached = _COST_MEMO.get(expr)
    if cached is not None:
        return cached
    total = _node_cost(expr) + sum(estimate_blast_cost(child) for child in expr.children())
    _COST_MEMO[expr] = total
    return total
