#!/usr/bin/env python3
"""Continuous multiple-application improvement (§1.2).

The paper sketches a system that continuously runs error-discovery tools
(DIODE, fuzzers) over a library of applications and uses horizontal code
transfer to repair every error they find.  This example runs that loop over
three recipients: errors are *discovered from scratch* by the in-repo DIODE
reproduction and field fuzzer (not taken from the benchmark definitions), and
each discovered error is repaired by transferring a check from whichever donor
in the application database validates first.

Run with::

    python examples/continuous_improvement.py
"""

from repro.apps import get_application
from repro.core import CodePhage, select_donors
from repro.core.reporting import ResultsDatabase
from repro.discovery import Diode, FieldFuzzer, FuzzerOptions
from repro.formats import get_format
from repro.lang import ErrorKind


#: (application, format, discovery tool) triples to sweep.
LIBRARY = [
    ("cwebp", "jpeg", "diode"),
    ("gif2tiff", "gif", "fuzzer"),
    ("wireshark-1.4.14", "dcp", "fuzzer"),
]


def discover(app_name: str, format_name: str, tool: str):
    """Run the discovery tool and return (seed, error_input, target) or None."""
    application = get_application(app_name)
    fmt = get_format(format_name)
    seed = fmt.build()
    if tool == "diode":
        findings = Diode(application.program(), fmt).discover(seed)
        if not findings:
            return None
        finding = findings[0]
        error_input, function = finding.error_input, finding.site_function
    else:
        fuzzer = FieldFuzzer(application.program(), fmt, FuzzerOptions(iterations=500, stop_after=1))
        findings = fuzzer.campaign(seed, application=app_name)
        if not findings:
            return None
        finding = findings[0]
        error_input, function = findings[0].error_input, finding.report.function
    target = next(t for t in application.targets if t.site_function == function)
    return seed, error_input, target


def main() -> None:
    database = ResultsDatabase()
    phage = CodePhage()

    for app_name, format_name, tool in LIBRARY:
        application = get_application(app_name)
        print(f"=== {application.full_name} ({format_name}, discovery: {tool}) ===")
        discovered = discover(app_name, format_name, tool)
        if discovered is None:
            print("no error discovered\n")
            continue
        seed, error_input, target = discovered
        print(f"discovered error at {target.target_id} ({target.error_kind.value})")

        selection = select_donors(format_name, seed, error_input, recipient=application)
        print("candidate donors:", [donor.full_name for donor in selection.donors])

        outcome = phage.repair(application, target, seed, error_input, format_name,
                               donors=selection.donors)
        record = database.add(outcome)
        if outcome.success:
            print(f"repaired with a check from {outcome.donor}:")
            print("  ", outcome.checks[-1].patch.render())
        else:
            print("repair failed:", outcome.failure_reason)
        print()

    print(database.to_table(title="Continuous improvement sweep"))


if __name__ == "__main__":
    main()
