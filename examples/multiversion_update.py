#!/usr/bin/env python3
"""Multiversion code transfer: a targeted Wireshark update (§1.2, §4.5).

Wireshark 1.4.14 divides by a zero payload-length field when dissecting
degenerate DCP-ETSI packets.  Instead of upgrading to 1.8.6 (with all the
disruption a full upgrade brings), Code Phage transfers just the ``if
(real_len)`` guard from the newer version — and, following §4.5, can generate
either the exit(-1) patch or the "return 0 and keep going" variant.

Run with::

    python examples/multiversion_update.py
"""

from repro.apps import get_application
from repro.core import CodePhage, CodePhageOptions, PatchStrategy
from repro.experiments import ERROR_CASES
from repro.formats import get_format
from repro.lang import compile_program, run_program


def transfer(strategy: PatchStrategy):
    case = ERROR_CASES["wireshark-dcp"]
    phage = CodePhage(CodePhageOptions(patch_strategy=strategy))
    return case, phage.transfer(
        case.application(),
        case.target(),
        get_application("wireshark-1.8.6"),
        case.seed_input(),
        case.error_input(),
        "dcp",
    )


def main() -> None:
    fmt = get_format("dcp")

    for strategy in (PatchStrategy.EXIT, PatchStrategy.RETURN_ZERO):
        case, outcome = transfer(strategy)
        check = outcome.checks[-1]
        print(f"=== strategy: {strategy.value} ===")
        print("patch:", check.patch.render())

        patched = compile_program(outcome.patched_source, name="wireshark-patched")
        error_input = case.error_input()
        result = run_program(patched, error_input, fmt.field_map(error_input))
        print(f"degenerate packet -> {result.status.value} "
              f"(exit {result.exit_code}, output {result.output})")
        normal = case.seed_input()
        ok = run_program(patched, normal, fmt.field_map(normal))
        print(f"normal packet     -> {ok.status.value} (output {ok.output})")
        print()


if __name__ == "__main__":
    main()
