#!/usr/bin/env python3
"""Quickstart: the paper's Section 2 example, end to end.

CWebP 0.3.1 overflows its JPEG image-buffer size computation
(``stride * height``).  DIODE finds an error-triggering input, FEH is selected
as a donor because it processes both the seed and the error-triggering input,
and Code Phage transfers FEH's ``IMAGE_DIMENSIONS_OK`` check into CWebP.

Run with::

    python examples/quickstart.py
"""

from repro import api
from repro.core import select_donors
from repro.experiments import ERROR_CASES
from repro.formats import get_format
from repro.lang import compile_program, run_program
from repro.symbolic import to_paper_string


def main() -> None:
    case = ERROR_CASES["cwebp-jpegdec"]
    recipient = case.application()
    fmt = get_format(case.format_name)
    seed, error_input = case.seed_input(), case.error_input()

    print("=== Error discovery (DIODE inputs) ===")
    crash = run_program(recipient.program(), error_input, fmt.field_map(error_input))
    print(f"CWebP on the error-triggering input: {crash.status.value} "
          f"({crash.error.kind.value} in {crash.error.function})")

    print("\n=== Donor selection ===")
    selection = select_donors(case.format_name, seed, error_input, recipient=recipient)
    print("viable donors:", [donor.full_name for donor in selection.donors])

    print("\n=== Code transfer (FEH -> CWebP) ===")
    report = api.repair(
        api.RepairRequest(
            recipient=recipient,
            target=case.target(),
            seed=seed,
            error_input=error_input,
            format_name="jpeg",
            donor="feh",
        )
    )
    outcome = report.outcome
    check = outcome.checks[-1]
    print("excised check (application-independent form):")
    print(" ", to_paper_string(check.excised.condition)[:200], "...")
    print("translated patch inserted into CWebP:")
    print(" ", check.patch.render())
    print("check size:", check.check_size, "| insertion points:", check.accounting)

    print("\n=== Validation ===")
    patched = compile_program(outcome.patched_source, name="cwebp-patched")
    rejected = run_program(patched, error_input, fmt.field_map(error_input))
    accepted = run_program(patched, seed, fmt.field_map(seed))
    print(f"patched CWebP on the error-triggering input: {rejected.status.value} "
          f"(exit code {rejected.exit_code})")
    print(f"patched CWebP on the seed input: {accepted.status.value} "
          f"(output {accepted.output})")
    slowest = max(outcome.metrics.stage_timings, key=outcome.metrics.stage_timings.get)
    print(f"slowest pipeline stage: {slowest} "
          f"({outcome.metrics.stage_timings[slowest] * 1000.0:.1f} ms)")
    print("\nTransfer successful:", outcome.success)


if __name__ == "__main__":
    main()
