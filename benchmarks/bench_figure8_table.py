"""E1 — regenerate the paper's Figure 8 results table.

For every donor/recipient row the harness runs the full CP pipeline and
reports the table's columns: generation time, relevant branches, flipped
branches, used checks, candidate insertion-point accounting (X - Y - Z = W),
and check size (excised -> translated).  The regenerated table is written to
``results/figure8.md``.

Shape expectations (absolute numbers differ from the paper because the
substrate is a MicroC simulation rather than the authors' binaries):

* every donor/recipient pair yields a successful validated transfer;
* flipped branches are a small subset of the relevant branches;
* the translated checks are no larger (usually much smaller) than the excised
  application-independent checks.
"""

from repro.experiments import ERROR_CASES, FIGURE8_ROWS, Figure8Row, run_row


def test_every_row_transfers_successfully(figure8_results):
    failures = [record for record in figure8_results.records if not record.success]
    assert not failures, f"failed rows: {[ (r.recipient, r.donor) for r in failures ]}"
    assert len(figure8_results.records) == len(FIGURE8_ROWS)


def test_flipped_branches_are_a_small_subset(figure8_results):
    for record in figure8_results.records:
        flipped = record.flipped_branches.strip("[]").split(",")
        assert int(flipped[0]) <= record.relevant_branches


def test_all_ten_errors_are_covered(figure8_results):
    targets = {record.target for record in figure8_results.records}
    assert targets == {case.target_id for case in ERROR_CASES.values()}


def test_bench_single_row_generation_time(benchmark):
    """Benchmark the worked-example row (CWebP <- FEH) end to end."""
    row = Figure8Row(case_id="cwebp-jpegdec", donor="feh")
    outcome = benchmark.pedantic(run_row, args=(row,), rounds=1, iterations=1)
    assert outcome.success
