"""E7 — scenario matrix: generated transfers across every error class.

Generates a seeded scenario corpus (:mod:`repro.scenarios`), runs its
transfer matrix through the campaign engine, and reports per-error-class
timing and success.  This is the "beyond Figure 8" benchmark: where the other
benches replay the paper's ten fixed errors, this one measures the pipeline
over procedurally generated donor/recipient pairs — every
:class:`~repro.lang.trace.ErrorKind` the VM detects, rotated across the
registered input formats.

Emits ``results/scenario_matrix.json``: per-class transfer counts, success
rates, and wall-time totals, plus corpus generation time.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import SchedulerOptions
from repro.lang.trace import ErrorKind
from repro.scenarios import generate_corpus, run_matrix

from conftest import write_benchmark_summary

SEED = 0
PAIRS_PER_CLASS = 2
WORKERS = 2


@pytest.fixture(scope="module")
def matrix_results(tmp_path_factory):
    """Generate the corpus, run the full matrix once, persist the JSON."""
    generation_start = time.perf_counter()
    corpus = generate_corpus(seed=SEED, pairs_per_class=PAIRS_PER_CLASS)
    generation_s = time.perf_counter() - generation_start

    store_dir = tmp_path_factory.mktemp("scenario-matrix") / "run"
    report, database = run_matrix(
        corpus, store_dir, options=SchedulerOptions(jobs=WORKERS, start_method="fork")
    )

    by_recipient = corpus.kind_of_recipient()
    per_class: dict[str, dict] = {}
    for record in database.records:
        name = by_recipient.get(record.recipient)
        if name is None:
            continue
        entry = per_class.setdefault(
            name,
            {"transfers": 0, "successful": 0, "generation_time_s": 0.0, "formats": []},
        )
        entry["transfers"] += 1
        entry["successful"] += 1 if record.success else 0
        entry["generation_time_s"] = round(
            entry["generation_time_s"] + record.generation_time_s, 4
        )
    for pair in corpus:
        formats = per_class.setdefault(
            pair.error_kind.value,
            {"transfers": 0, "successful": 0, "generation_time_s": 0.0, "formats": []},
        )["formats"]
        if pair.format_name not in formats:
            formats.append(pair.format_name)

    payload = {
        "seed": SEED,
        "pairs_per_class": PAIRS_PER_CLASS,
        "workers": WORKERS,
        "corpus_generation_s": round(generation_s, 4),
        "campaign_elapsed_s": round(report.elapsed_s, 4),
        "classes": per_class,
    }
    write_benchmark_summary(
        "scenario_matrix",
        wall_ms={
            "corpus_generation": generation_s * 1000.0,
            "campaign": report.elapsed_s * 1000.0,
        },
        counters={
            "transfers": report.completed,
            "successful": sum(entry["successful"] for entry in per_class.values()),
        },
        extra=payload,
    )
    return corpus, report, database, payload


def test_every_error_class_produces_validated_transfers(matrix_results):
    corpus, report, _, payload = matrix_results
    assert report.completed == len(corpus)
    assert not report.failed
    for kind in ErrorKind:
        entry = payload["classes"][kind.value]
        assert entry["transfers"] == PAIRS_PER_CLASS
        assert entry["successful"] == PAIRS_PER_CLASS, (
            f"{kind.value}: {entry['successful']}/{entry['transfers']} validated"
        )
    print(
        f"\nmatrix: {report.completed} transfers in {report.elapsed_s:.2f}s "
        f"({payload['corpus_generation_s']:.2f}s corpus generation)"
    )
    for name in sorted(payload["classes"]):
        entry = payload["classes"][name]
        print(
            f"  {name:22s} {entry['successful']}/{entry['transfers']} ok, "
            f"{entry['generation_time_s']:.2f}s, formats: {', '.join(entry['formats'])}"
        )


def test_matrix_scales_past_the_paper_corpus(matrix_results):
    """The corpus covers strictly more error classes than Figure 8's three."""
    corpus, _, database, _ = matrix_results
    classes = {pair.error_kind for pair in corpus}
    assert len(classes) == len(ErrorKind)
    assert len({record.recipient for record in database.records}) == len(corpus)


def test_bench_scenario_matrix(tmp_path_factory, benchmark):
    corpus = generate_corpus(seed=SEED, pairs_per_class=1)

    def run(index=[0]):
        index[0] += 1
        store = tmp_path_factory.mktemp(f"bench-matrix-{index[0]}")
        return run_matrix(
            corpus, store / "run", options=SchedulerOptions(jobs=1, start_method="fork")
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
