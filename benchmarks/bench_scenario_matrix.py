"""E7 — scenario matrix: generated transfers across every error class.

Generates a seeded scenario corpus (:mod:`repro.scenarios`), runs its
transfer matrix through the campaign engine, and reports per-error-class
timing and success.  This is the "beyond Figure 8" benchmark: where the other
benches replay the paper's ten fixed errors, this one measures the pipeline
over procedurally generated donor/recipient pairs — every
:class:`~repro.lang.trace.ErrorKind` the VM detects, rotated across the
registered input formats.

Emits ``results/scenario_matrix.json``: per-class transfer counts, success
rates, and wall-time totals, plus corpus generation time.  A second summary,
``results/scenario_matrix_hardness.json``, covers the full-hardness corpus
(multi-defect, cross-format, adversarial near-miss, mutation dimensions)
with a per-dimension success-rate table and the false-accept count — both
feed ``benchmarks/trajectory.json`` through the perf ledger.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import SchedulerOptions
from repro.lang.trace import ErrorKind
from repro.scenarios import (
    HARDNESS_DIMENSIONS,
    CorpusConfig,
    generate_corpus,
    run_matrix,
)

from conftest import write_benchmark_summary

SEED = 0
PAIRS_PER_CLASS = 2
WORKERS = 2

#: Hard-matrix knobs: one pair per class per dimension keeps the CI smoke
#: fast while still covering every (class x dimension) cell once.
HARD_PAIRS_PER_CLASS = 1


@pytest.fixture(scope="module")
def matrix_results(tmp_path_factory):
    """Generate the corpus, run the full matrix once, persist the JSON."""
    generation_start = time.perf_counter()
    corpus = generate_corpus(seed=SEED, pairs_per_class=PAIRS_PER_CLASS)
    generation_s = time.perf_counter() - generation_start

    store_dir = tmp_path_factory.mktemp("scenario-matrix") / "run"
    report, database = run_matrix(
        corpus, store_dir, options=SchedulerOptions(jobs=WORKERS, start_method="fork")
    )

    by_recipient = corpus.kind_of_recipient()
    per_class: dict[str, dict] = {}
    for record in database.records:
        name = by_recipient.get(record.recipient)
        if name is None:
            continue
        entry = per_class.setdefault(
            name,
            {"transfers": 0, "successful": 0, "generation_time_s": 0.0, "formats": []},
        )
        entry["transfers"] += 1
        entry["successful"] += 1 if record.success else 0
        entry["generation_time_s"] = round(
            entry["generation_time_s"] + record.generation_time_s, 4
        )
    for pair in corpus:
        formats = per_class.setdefault(
            pair.error_kind.value,
            {"transfers": 0, "successful": 0, "generation_time_s": 0.0, "formats": []},
        )["formats"]
        if pair.format_name not in formats:
            formats.append(pair.format_name)

    payload = {
        "seed": SEED,
        "pairs_per_class": PAIRS_PER_CLASS,
        "workers": WORKERS,
        "corpus_generation_s": round(generation_s, 4),
        "campaign_elapsed_s": round(report.elapsed_s, 4),
        "classes": per_class,
    }
    write_benchmark_summary(
        "scenario_matrix",
        wall_ms={
            "corpus_generation": generation_s * 1000.0,
            "campaign": report.elapsed_s * 1000.0,
        },
        counters={
            "transfers": report.completed,
            "successful": sum(entry["successful"] for entry in per_class.values()),
        },
        extra=payload,
    )
    return corpus, report, database, payload


def test_every_error_class_produces_validated_transfers(matrix_results):
    corpus, report, _, payload = matrix_results
    assert report.completed == len(corpus)
    assert not report.failed
    for kind in ErrorKind:
        entry = payload["classes"][kind.value]
        assert entry["transfers"] == PAIRS_PER_CLASS
        assert entry["successful"] == PAIRS_PER_CLASS, (
            f"{kind.value}: {entry['successful']}/{entry['transfers']} validated"
        )
    print(
        f"\nmatrix: {report.completed} transfers in {report.elapsed_s:.2f}s "
        f"({payload['corpus_generation_s']:.2f}s corpus generation)"
    )
    for name in sorted(payload["classes"]):
        entry = payload["classes"][name]
        print(
            f"  {name:22s} {entry['successful']}/{entry['transfers']} ok, "
            f"{entry['generation_time_s']:.2f}s, formats: {', '.join(entry['formats'])}"
        )


def test_matrix_scales_past_the_paper_corpus(matrix_results):
    """The corpus covers strictly more error classes than Figure 8's three."""
    corpus, _, database, _ = matrix_results
    classes = {pair.error_kind for pair in corpus}
    assert len(classes) == len(ErrorKind)
    assert len({record.recipient for record in database.records}) == len(corpus)


@pytest.fixture(scope="module")
def hard_matrix_results(tmp_path_factory):
    """Run the full-hardness matrix once and persist the per-dimension JSON."""
    generation_start = time.perf_counter()
    corpus = generate_corpus(
        CorpusConfig(
            seed=SEED,
            pairs_per_class=HARD_PAIRS_PER_CLASS,
            hardness=HARDNESS_DIMENSIONS,
        )
    )
    generation_s = time.perf_counter() - generation_start

    store_dir = tmp_path_factory.mktemp("scenario-matrix-hard") / "run"
    report, database = run_matrix(
        corpus, store_dir, options=SchedulerOptions(jobs=WORKERS, start_method="fork")
    )

    dimension_of = corpus.hardness_of_recipient()
    per_dimension: dict[str, dict] = {
        name: {"transfers": 0, "successful": 0} for name in HARDNESS_DIMENSIONS
    }
    for record in database.records:
        entry = per_dimension.get(dimension_of.get(record.recipient))
        if entry is None:
            continue
        entry["transfers"] += 1
        entry["successful"] += 1 if record.success else 0
    for entry in per_dimension.values():
        entry["success_rate"] = (
            round(entry["successful"] / entry["transfers"], 4)
            if entry["transfers"]
            else 0.0
        )

    # Every validated adversarial job is a false accept (the registered
    # donor is the near-miss); the target the ledger tracks is zero.
    false_accepts = per_dimension["adversarial"]["successful"]
    counters = report.metrics.get("counters") or {}
    payload = {
        "seed": SEED,
        "pairs_per_class": HARD_PAIRS_PER_CLASS,
        "workers": WORKERS,
        "hardness": list(HARDNESS_DIMENSIONS),
        "corpus_generation_s": round(generation_s, 4),
        "campaign_elapsed_s": round(report.elapsed_s, 4),
        "dimensions": per_dimension,
        "false_accept_rate": report.false_accept_rate(),
    }
    write_benchmark_summary(
        "scenario_matrix_hardness",
        wall_ms={
            "corpus_generation": generation_s * 1000.0,
            "campaign": report.elapsed_s * 1000.0,
        },
        counters={
            "transfers": report.completed,
            "false_accepts": false_accepts,
            "multi_round_repairs": int(
                counters.get("scenarios.multi_round_repairs", 0)
            ),
            # Per-dimension success rates: the ledger folds counters into
            # trajectory.json, so the table is tracked across runs.
            **{
                f"success_rate_{name}": per_dimension[name]["success_rate"]
                for name in HARDNESS_DIMENSIONS
            },
        },
        extra=payload,
    )
    return corpus, report, payload


def test_hard_matrix_dimension_table(hard_matrix_results):
    corpus, report, payload = hard_matrix_results
    assert report.completed == len(corpus)
    assert not report.failed
    per_dimension = payload["dimensions"]
    expected = len(ErrorKind) * HARD_PAIRS_PER_CLASS
    for name in HARDNESS_DIMENSIONS:
        assert per_dimension[name]["transfers"] == expected, (
            f"{name}: {per_dimension[name]['transfers']}/{expected} transfers ran"
        )
    # Positive dimensions must fully validate; adversarial must fully fail.
    for name in ("baseline", "multi_defect", "cross_format", "mutation"):
        assert per_dimension[name]["success_rate"] == 1.0, (
            f"{name}: {per_dimension[name]['successful']}/{expected} validated"
        )
    assert per_dimension["adversarial"]["successful"] == 0, (
        "near-miss donor validated: a false accept"
    )
    assert report.false_accept_rate() == 0.0
    print(
        f"\nhard matrix: {report.completed} transfers in {report.elapsed_s:.2f}s "
        f"({payload['corpus_generation_s']:.2f}s corpus generation), "
        f"false-accept rate {report.false_accept_rate():.1%}"
    )
    for name in HARDNESS_DIMENSIONS:
        entry = per_dimension[name]
        print(
            f"  {name:14s} {entry['successful']}/{entry['transfers']} ok "
            f"({entry['success_rate']:.0%})"
        )


def test_bench_scenario_matrix(tmp_path_factory, benchmark):
    corpus = generate_corpus(seed=SEED, pairs_per_class=1)

    def run(index=[0]):
        index[0] += 1
        store = tmp_path_factory.mktemp(f"bench-matrix-{index[0]}")
        return run_matrix(
            corpus, store / "run", options=SchedulerOptions(jobs=1, start_method="fork")
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
