"""E3 — ablation of the Figure 5 bit-manipulation rewrite rules.

The paper: the rules "significantly reduce the size and complexity of the
extracted symbolic expressions".  The bench excises the candidate check for
each Figure 8 error/donor pair twice — with the rules enabled and disabled —
and compares operation counts.
"""

import pytest

from repro.apps import get_application
from repro.core import discover_candidate_checks, excise_check, relevant_fields
from repro.experiments import FIGURE8_ROWS
from repro.formats import get_format
from repro.symbolic import SimplifyOptions, operation_count


def _excised_sizes(simplify_options):
    sizes = {}
    for row in FIGURE8_ROWS:
        case = row.case
        donor = get_application(row.donor)
        fmt = get_format(case.format_name)
        seed, error = case.seed_input(), case.error_input()
        discovery = discover_candidate_checks(
            donor.program(), fmt, seed, error,
            relevant=relevant_fields(fmt, seed, error),
            simplify_options=simplify_options,
        )
        if not discovery.candidates:
            continue
        excised = excise_check(
            donor.program(), fmt, error, discovery.candidates[0],
            simplify_options=simplify_options, donor_name=row.donor,
        )
        sizes[(case.case_id, row.donor)] = operation_count(excised.condition)
    return sizes


@pytest.fixture(scope="module")
def with_rules():
    return _excised_sizes(SimplifyOptions())


@pytest.fixture(scope="module")
def without_rules():
    return _excised_sizes(SimplifyOptions.without_bit_slicing())


def test_rules_reduce_excised_check_size(with_rules, without_rules):
    assert set(with_rules) == set(without_rules)
    total_with = sum(with_rules.values())
    total_without = sum(without_rules.values())
    print("\nExcised check size (operations), rules on vs off:")
    for key in sorted(with_rules):
        print(f"  {key[0]:18s} donor={key[1]:16s} {without_rules[key]:4d} -> {with_rules[key]:4d}")
    print(f"  TOTAL {total_without} -> {total_with}")
    assert total_with < total_without
    # No individual check gets bigger because of the rules.
    assert all(with_rules[key] <= without_rules[key] for key in with_rules)


def test_bench_excision_with_rules(benchmark):
    benchmark.pedantic(_excised_sizes, args=(SimplifyOptions(),), rounds=1, iterations=1)
