"""E6 — campaign engine scaling: worker counts and persistent-cache warmth.

Runs the full Figure-8 campaign through the campaign engine and compares:

* 1 worker vs N workers (results must be identical up to wall-clock noise);
* a cold vs a warm persistent solver cache — the warm run must answer
  strictly more queries from the cache and strictly fewer with the expensive
  decision procedures (exhaustive enumeration, SAT, sampling fallback),
  which is the paper's §3.3 query-caching optimisation at campaign scale.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import CampaignScheduler, RunStore, SchedulerOptions, figure8_plan

PLAN = figure8_plan()
WORKERS = 4


def _run_campaign(store_dir, jobs: int, fresh: bool = False):
    store = RunStore(store_dir)
    store.initialise(PLAN, fresh=fresh)
    report = CampaignScheduler(PLAN, store, SchedulerOptions(jobs=jobs)).run()
    return store, report


def _normalise(record):
    return dataclasses.replace(
        record,
        generation_time_s=0.0,
        solver_queries=0,
        solver_cache_hits=0,
        solver_persistent_hits=0,
        solver_expensive_queries=0,
    )


@pytest.fixture(scope="module")
def campaign_runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("campaign-scaling")
    serial_store, serial_cold = _run_campaign(base / "serial", jobs=1)
    _, serial_warm = _run_campaign(base / "serial", jobs=1, fresh=True)
    parallel_store, parallel_cold = _run_campaign(base / "parallel", jobs=WORKERS)
    return {
        "serial_store": serial_store,
        "serial_cold": serial_cold,
        "serial_warm": serial_warm,
        "parallel_store": parallel_store,
        "parallel_cold": parallel_cold,
    }


def test_parallel_campaign_reproduces_the_serial_table(campaign_runs):
    serial = campaign_runs["serial_store"].merge_into_database(PLAN)
    parallel = campaign_runs["parallel_store"].merge_into_database(PLAN)
    assert len(serial.records) == len(PLAN)
    assert [_normalise(r) for r in parallel.records] == [
        _normalise(r) for r in serial.records
    ]
    print(
        f"\n1 worker: {campaign_runs['serial_cold'].elapsed_s:.2f}s, "
        f"{WORKERS} workers: {campaign_runs['parallel_cold'].elapsed_s:.2f}s"
    )


def test_warm_cache_reduces_expensive_queries(campaign_runs):
    cold = campaign_runs["serial_cold"]
    warm = campaign_runs["serial_warm"]
    print(
        f"\ncold: {cold.persistent_cache_hits}/{cold.solver_queries} persistent hits, "
        f"{cold.expensive_queries} expensive queries\n"
        f"warm: {warm.persistent_cache_hits}/{warm.solver_queries} persistent hits, "
        f"{warm.expensive_queries} expensive queries"
    )
    assert cold.expensive_queries > 0
    assert warm.expensive_queries < cold.expensive_queries
    assert warm.persistent_cache_hits > cold.persistent_cache_hits
    assert warm.persistent_hit_rate > 0.0


def test_bench_campaign_one_worker(tmp_path_factory, benchmark):
    base = tmp_path_factory.mktemp("bench-serial")
    benchmark.pedantic(
        _run_campaign, args=(base, 1), rounds=1, iterations=1
    )


def test_bench_campaign_four_workers(tmp_path_factory, benchmark):
    base = tmp_path_factory.mktemp("bench-parallel")
    benchmark.pedantic(
        _run_campaign, args=(base, WORKERS), rounds=1, iterations=1
    )
