"""E5 — candidate insertion points and the unstable-point filter.

Figure 8's "Candidate Insertion Pts" column has the form X - Y - Z = W; this
bench reports X (candidates) and Y (unstable) per recipient/check pair and
verifies that the unstable points CP filters really do see different values on
different executions (multipurpose helper code in the recipients).
"""

import pytest

from repro.apps import get_application
from repro.core import (
    discover_candidate_checks,
    excise_check,
    find_insertion_points,
    relevant_fields,
)
from repro.experiments import ERROR_CASES
from repro.formats import get_format


def _insertion_report(case_id: str, donor_name: str):
    case = ERROR_CASES[case_id]
    donor = get_application(donor_name)
    fmt = get_format(case.format_name)
    seed, error = case.seed_input(), case.error_input()
    discovery = discover_candidate_checks(
        donor.program(), fmt, seed, error, relevant=relevant_fields(fmt, seed, error)
    )
    excised = excise_check(donor.program(), fmt, error, discovery.candidates[0])
    return find_insertion_points(
        case.application().program(), seed, fmt.field_map(seed), excised.fields
    )


def test_unstable_points_filtered_for_dillo():
    # Dillo's describe_pair helper runs with different values on different
    # invocations: its interior points must be classified unstable.
    report = _insertion_report("dillo-png", "feh")
    assert report.candidate_count > 0
    assert report.unstable_count >= 1
    assert all(point.function == "describe_pair" for point in report.unstable_points)


def test_stable_points_expose_required_fields():
    report = _insertion_report("cwebp-jpegdec", "feh")
    assert report.unstable_count == 0 or report.stable_count > 0
    for point in report.stable_points:
        reachable = set()
        for name in point.names:
            reachable |= name.expression.fields()
        assert report.required_fields <= reachable


def test_insertion_point_accounting_across_recipients():
    rows = [
        ("cwebp-jpegdec", "feh"),
        ("dillo-png", "mtpaint"),
        ("display-xwindow", "viewnior"),
        ("jasper-tiles", "openjpeg"),
        ("wireshark-dcp", "wireshark-1.8.6"),
    ]
    print("\nCandidate insertion points (X) and unstable points (Y):")
    for case_id, donor in rows:
        report = _insertion_report(case_id, donor)
        print(f"  {case_id:18s} donor={donor:16s} X={report.candidate_count:3d} Y={report.unstable_count}")
        assert report.candidate_count >= 1
        assert report.stable_count >= 1


def test_bench_insertion_analysis(benchmark):
    benchmark.pedantic(_insertion_report, args=("cwebp-jpegdec", "feh"), rounds=1, iterations=1)
