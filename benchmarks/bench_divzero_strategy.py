"""E7 — the alternate divide-by-zero strategy (§4.5).

"Empirically, returning zero as the result of divide by zero errors often
enables the application to continue to execute productively.  We therefore
implemented an alternate strategy that returns 0 if the check fires rather
than exiting."  The bench transfers the Wireshark 1.8.6 guard into Wireshark
1.4.14 with both strategies and compares the behaviour of the patched
dissector on the degenerate packet.
"""

import pytest

from repro.apps import get_application
from repro.core import CodePhage, CodePhageOptions, PatchStrategy
from repro.experiments import ERROR_CASES
from repro.formats import get_format
from repro.lang import RunStatus, compile_program, run_program


CASE = ERROR_CASES["wireshark-dcp"]


def _transfer(strategy: PatchStrategy):
    phage = CodePhage(CodePhageOptions(patch_strategy=strategy))
    return phage.transfer(
        CASE.application(),
        CASE.target(),
        get_application("wireshark-1.8.6"),
        CASE.seed_input(),
        CASE.error_input(),
        format_name="dcp",
    )


@pytest.fixture(scope="module")
def exit_outcome():
    return _transfer(PatchStrategy.EXIT)


@pytest.fixture(scope="module")
def return_zero_outcome():
    return _transfer(PatchStrategy.RETURN_ZERO)


def _run_patched(outcome, data):
    fmt = get_format("dcp")
    program = compile_program(outcome.patched_source, name="wireshark-patched")
    return run_program(program, data, fmt.field_map(data))


def test_both_strategies_eliminate_the_error(exit_outcome, return_zero_outcome):
    assert exit_outcome.success
    assert return_zero_outcome.success


def test_exit_strategy_rejects_the_packet(exit_outcome):
    result = _run_patched(exit_outcome, CASE.error_input())
    assert result.status is RunStatus.EXIT
    assert result.exit_code == -1


def test_return_zero_strategy_continues_execution(return_zero_outcome):
    """§4.5: the return-0 strategy delivers correct continued execution."""
    result = _run_patched(return_zero_outcome, CASE.error_input())
    assert result.status is RunStatus.OK
    assert result.error is None


def test_seed_behaviour_is_identical_under_both(exit_outcome, return_zero_outcome):
    seed = CASE.seed_input()
    assert _run_patched(exit_outcome, seed).behaviour() == _run_patched(
        return_zero_outcome, seed
    ).behaviour()


def test_bench_multiversion_transfer(benchmark):
    outcome = benchmark.pedantic(_transfer, args=(PatchStrategy.EXIT,), rounds=1, iterations=1)
    assert outcome.success
