"""E8 — distributed campaign scaling: 1/2/4-node throughput curve.

Runs one generated scenario-matrix corpus through the coordinator/worker
subsystem (:mod:`repro.dist`) at three fleet sizes and reports the
throughput curve plus the control-plane telemetry (steals, hops,
utilization).

**What is measured — and what is emulated.**  This harness runs on a
single host (CI containers here expose one CPU), so N worker-node
processes cannot deliver N× of real *compute*.  Each emulated node
therefore executes jobs through a fixed per-job *service latency*
(:data:`SERVICE_TIME_S` of sleep, standing in for the node's own CPU
doing the transfer), which makes the bench measure exactly the thing the
dist subsystem owns: whether the coordinator's ring placement, claim
protocol, and work-stealing actually keep N nodes busy in parallel.  A
protocol that serialises nodes, starves claims, or loses jobs shows up
directly as a collapsed speedup.  The absolute job cost is emulated; the
concurrency, message traffic, placement, and store writes are all real.

Emits ``results/distributed_scaling.json`` on the shared summary schema;
the per-fleet wall times are service-time-bound and therefore stable
enough for the 25% trajectory gate.
"""

from __future__ import annotations

import time
from dataclasses import asdict

from repro.campaign import RunStore
from repro.core.reporting import TransferRecord
from repro.dist import DistOptions, DistributedCoordinator
from repro.scenarios import corpus_plan, generate_corpus

from conftest import write_benchmark_summary

SEED = 7
PAIRS_PER_CLASS = 4          # x 6 error classes = 24 generated transfers
SERVICE_TIME_S = 0.08        # emulated per-job node compute
FLEETS = (1, 2, 4)
REQUIRED_4_NODE_SPEEDUP = 3.0


def emulated_node_runner(payload: dict, cache_spec) -> dict:
    """One emulated node executing one transfer: fixed service latency."""
    time.sleep(SERVICE_TIME_S)
    record = TransferRecord(
        recipient=payload["case_id"],
        target=f"{payload['case_id']}.c:1",
        donor=payload["donor"],
        success=True,
        generation_time_s=SERVICE_TIME_S,
        relevant_branches=1,
        flipped_branches="1",
        used_checks=1,
        insertion_points="1 - 0 - 0 = 1",
        check_size="2 -> 1",
    )
    return {"record": asdict(record), "elapsed_s": SERVICE_TIME_S}


def _run_fleet(tmp_path_factory, plan, nodes: int) -> dict:
    store = RunStore(tmp_path_factory.mktemp(f"dist-{nodes}n") / "run")
    store.initialise(plan)
    start = time.perf_counter()
    report = DistributedCoordinator(
        plan,
        store,
        DistOptions(nodes=nodes, start_method="fork", poll_interval_s=0.005),
        runner=emulated_node_runner,
    ).run()
    elapsed = time.perf_counter() - start
    assert report.completed == len(plan), (nodes, report.failed)
    counters = report.metrics.get("counters") or {}
    gauges = report.metrics.get("gauges") or {}
    return {
        "nodes": nodes,
        "elapsed_s": round(elapsed, 4),
        "throughput_jobs_per_s": round(len(plan) / elapsed, 2),
        "steals": int(counters.get("dist.steals", 0)),
        "utilization": gauges.get("campaign.worker_utilization", 0.0),
    }


def test_bench_distributed_scaling(tmp_path_factory):
    corpus = generate_corpus(seed=SEED, pairs_per_class=PAIRS_PER_CLASS)
    plan = corpus_plan(corpus)
    assert len(plan) == 24

    curve = [_run_fleet(tmp_path_factory, plan, nodes) for nodes in FLEETS]
    by_nodes = {point["nodes"]: point for point in curve}
    speedup_2 = by_nodes[1]["elapsed_s"] / by_nodes[2]["elapsed_s"]
    speedup_4 = by_nodes[1]["elapsed_s"] / by_nodes[4]["elapsed_s"]

    print(f"\ndistributed scaling ({len(plan)} jobs, {SERVICE_TIME_S * 1000:.0f}ms service time):")
    for point in curve:
        print(
            f"  {point['nodes']} node(s): {point['elapsed_s']:.2f}s, "
            f"{point['throughput_jobs_per_s']:.1f} jobs/s, "
            f"{point['steals']} steals, {point['utilization']:.0%} utilized"
        )
    print(f"  speedup: 2 nodes {speedup_2:.2f}x, 4 nodes {speedup_4:.2f}x")

    write_benchmark_summary(
        "distributed_scaling",
        wall_ms={
            f"nodes_{point['nodes']}": point["elapsed_s"] * 1000.0
            for point in curve
        },
        counters={
            "jobs": len(plan),
            "speedup_2_nodes": round(speedup_2, 3),
            "speedup_4_nodes": round(speedup_4, 3),
            "steals_total": sum(point["steals"] for point in curve),
        },
        extra={
            "seed": SEED,
            "pairs_per_class": PAIRS_PER_CLASS,
            "service_time_s": SERVICE_TIME_S,
            "curve": curve,
        },
    )

    # The acceptance bar: 4 emulated nodes must clear 3x one node.
    assert speedup_4 >= REQUIRED_4_NODE_SPEEDUP, (
        f"4-node speedup {speedup_4:.2f}x under {REQUIRED_4_NODE_SPEEDUP}x "
        f"(curve: {curve})"
    )
    assert speedup_2 >= 1.6, f"2-node speedup collapsed: {speedup_2:.2f}x"
