"""Service throughput: submit→done round-trips at 1/8/32 concurrent clients.

Drives the live HTTP daemon (real sockets, real worker threads, real
store writes) with a stub runner, so the numbers measure the service
layer itself — routing, queueing, settlement, persistence — rather than
the repair pipeline.  Per concurrency level the bench reports requests
per second and the p95 submit→done latency; the acceptance bar is the
32-client level finishing every job with zero lost or duplicated ids.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.events import StageFinished, StageStarted
from repro.service import RepairDaemon, ServiceClient, ServiceConfig

from conftest import write_benchmark_summary

CLIENT_LEVELS = (1, 8, 32)
JOBS_PER_CLIENT = 6
PAYLOAD = {"kind": "transfer", "case": "cwebp-jpegdec", "donor": "feh"}


def _stub_runner(manager, state):
    for spec in state.submission.specs:
        state.buffer(StageStarted(stage="bench"))
        state.buffer(StageFinished(stage="bench", elapsed_s=0.001))
    return {"success": True, "recipient": "bench", "donor": "feh"}


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    base = tmp_path_factory.mktemp("service-throughput")
    config = ServiceConfig(
        store_dir=str(base / "store"),
        stores_root=str(base),
        workers=4,
        pool_size=1,
        queue_limit=512,
        enable_metrics=False,
    )
    instance = RepairDaemon(config, runner=_stub_runner).start()
    try:
        yield instance
    finally:
        instance.stop()


def _drive_level(daemon: RepairDaemon, clients: int) -> dict:
    """Run ``clients`` threads × JOBS_PER_CLIENT submit→done round trips."""
    latencies: list[float] = []
    job_ids: list[str] = []
    lock = threading.Lock()
    errors: list[Exception] = []

    def one_client() -> None:
        client = ServiceClient(daemon.base_url, timeout=30)
        try:
            for _ in range(JOBS_PER_CLIENT):
                started = time.perf_counter()
                state = client.submit(PAYLOAD)
                final = client.wait(state["job_id"], timeout=60, poll_s=0.005)
                elapsed = time.perf_counter() - started
                assert final["status"] == "done"
                with lock:
                    latencies.append(elapsed)
                    job_ids.append(state["job_id"])
        except Exception as exc:  # noqa: BLE001 - surfaced via the assert below
            errors.append(exc)

    threads = [threading.Thread(target=one_client) for _ in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    wall_s = time.perf_counter() - wall_started

    assert not errors, errors
    expected = clients * JOBS_PER_CLIENT
    assert len(job_ids) == expected
    assert len(set(job_ids)) == expected  # zero lost or duplicated jobs
    latencies.sort()
    p95 = latencies[max(0, int(len(latencies) * 0.95) - 1)]
    return {
        "clients": clients,
        "jobs": expected,
        "wall_s": wall_s,
        "rps": expected / wall_s,
        "p95_ms": p95 * 1000.0,
    }


def test_service_throughput_scales_to_32_clients(daemon):
    levels = [_drive_level(daemon, clients) for clients in CLIENT_LEVELS]
    for level in levels:
        print(
            f"\n{level['clients']:>2} clients: {level['rps']:7.1f} jobs/s, "
            f"p95 {level['p95_ms']:6.1f} ms ({level['jobs']} jobs)"
        )

    # Every submitted job settled into the store exactly once.
    stored = daemon.store.results()
    assert len(stored) == sum(level["jobs"] for level in levels)

    wall_ms = {f"clients_{level['clients']}": level["wall_s"] * 1000.0 for level in levels}
    wall_ms["total"] = sum(wall_ms.values())
    write_benchmark_summary(
        "service_throughput",
        wall_ms,
        counters={
            "jobs": float(sum(level["jobs"] for level in levels)),
            "rps_32_clients": round(levels[-1]["rps"], 2),
        },
        extra={
            "levels": [
                {
                    "clients": level["clients"],
                    "rps": round(level["rps"], 2),
                    "p95_ms": round(level["p95_ms"], 2),
                }
                for level in levels
            ],
            "jobs_per_client": JOBS_PER_CLIENT,
        },
    )
