"""Shared fixtures for the benchmark harness.

The full Figure 8 table is expensive to regenerate, so it is computed once per
benchmark session and shared by the benches that report on it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.reporting import ResultsDatabase
from repro.experiments import FIGURE8_ROWS, run_row

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def figure8_results() -> ResultsDatabase:
    """Run every Figure 8 row once and persist the regenerated table."""
    database = ResultsDatabase()
    for row in FIGURE8_ROWS:
        database.add(run_row(row))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure8.md").write_text(
        database.to_table(title="Figure 8 — Summary of CP Experimental Results (reproduction)")
        + "\n"
    )
    database.save(RESULTS_DIR / "figure8.json")
    return database
