"""Shared fixtures and helpers for the benchmark harness.

The full Figure 8 table is expensive to regenerate, so it is computed once per
benchmark session and shared by the benches that report on it.

:func:`write_benchmark_summary` is the one path every bench's JSON output
goes through: it emits the shared benchmark-summary schema
(:mod:`repro.obs.ledger` — name, wall-ms breakdown, counters) that the
perf-trajectory ledger ingests and ``tools/check_perf.py`` gates CI on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import pytest

from repro.core.reporting import ResultsDatabase
from repro.experiments import FIGURE8_ROWS, run_row
from repro.obs import ledger

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_benchmark_summary(
    name: str,
    wall_ms: dict[str, float],
    counters: Optional[dict[str, float]] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Write one shared-schema benchmark summary to ``results/<name>.json``."""
    summary = ledger.make_summary(name, wall_ms, counters=counters, extra=extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{name}.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
    return out


@pytest.fixture(scope="session")
def figure8_results() -> ResultsDatabase:
    """Run every Figure 8 row once and persist the regenerated table."""
    database = ResultsDatabase()
    for row in FIGURE8_ROWS:
        database.add(run_row(row))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure8.md").write_text(
        database.to_table(title="Figure 8 — Summary of CP Experimental Results (reproduction)")
        + "\n"
    )
    database.save(RESULTS_DIR / "figure8.json")
    return database
