"""E2 — the Section 2 worked example: transferring the FEH check into CWebP.

The paper shows that the complex application-independent excised check (the
IMAGE_DIMENSIONS_OK computation including the donor's endianness conversions)
translates into a one-line recipient patch over ``dinfo.output_width`` and
``dinfo.output_height`` with the 536870911 ((1 << 29) - 1) bound.
"""

import pytest

from repro.apps import get_application
from repro.core import CodePhage
from repro.experiments import ERROR_CASES
from repro.lang import RunStatus, run_program
from repro.formats import get_format


CASE = ERROR_CASES["cwebp-jpegdec"]


def _run_transfer():
    phage = CodePhage()
    return phage.transfer(
        CASE.application(),
        CASE.target(),
        get_application("feh"),
        CASE.seed_input(),
        CASE.error_input(),
        format_name="jpeg",
    )


@pytest.fixture(scope="module")
def outcome():
    return _run_transfer()


def test_transfer_succeeds(outcome):
    assert outcome.success


def test_patch_matches_paper_shape(outcome):
    patch = outcome.checks[-1].patch
    assert "536870911" in patch.condition_source
    assert "dinfo.output_width" in patch.condition_source
    assert "dinfo.output_height" in patch.condition_source
    # The excised check is larger than the translated check (57 -> 4 in the paper).
    assert patch.excised_size >= patch.translated_size


def test_patched_cwebp_rejects_error_input_and_keeps_seed(outcome):
    fmt = get_format("jpeg")
    from repro.lang import compile_program

    patched = compile_program(outcome.patched_source, name="cwebp-patched")
    error_run = run_program(patched, CASE.error_input(), fmt.field_map(CASE.error_input()))
    seed_run = run_program(patched, CASE.seed_input(), fmt.field_map(CASE.seed_input()))
    assert error_run.status is RunStatus.EXIT and error_run.exit_code == -1
    assert seed_run.accepted


def test_bench_cwebp_feh_transfer(benchmark):
    outcome = benchmark.pedantic(_run_transfer, rounds=1, iterations=1)
    assert outcome.success
