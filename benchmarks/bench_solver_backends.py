"""Per-backend solver benchmark: wall time, conflicts, learned clauses, dedupe.

Runs one representative query workload — equivalence miters, overflow
conditions, and randomized blasted comparisons, the three query shapes the
transfer pipeline produces — through every registered backend and emits
``results/solver_backends.json``:

* per backend: wall time, conflicts, decisions, learned clauses, and the
  SAT/UNSAT/UNKNOWN verdict split over the whole workload;
* the query-batch dedupe rate of an engine-level rerun (every query issued
  twice, the second round answered entirely from the batch);
* verdict parity across backends (also enforced as an assertion).

CI runs this file in smoke mode (it is a plain pytest module and finishes in
seconds); run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest benchmarks/bench_solver_backends.py -q -s
"""

from __future__ import annotations

import random

from repro.solver import BACKENDS
from repro.solver.engine import ValidationEngine
from repro.solver.overflow import overflow_condition
from repro.solver.sat import Status
from repro.symbolic import builder

from conftest import write_benchmark_summary

A8 = builder.input_field("/a", 8)
B8 = builder.input_field("/b", 8)
W16 = builder.input_field("/w", 16)
H16 = builder.input_field("/h", 16)


def _workload() -> list:
    """Width-1 conditions covering the pipeline's three query shapes."""
    conditions = [
        # Equivalence miters (rewrite stage): mostly UNSAT.
        builder.ne(builder.add(A8, B8), builder.add(B8, A8)),
        builder.ne(builder.mul(A8, 2), builder.shl(A8, 1)),
        builder.ne(builder.bvand(A8, B8), builder.bvor(A8, B8)),
        builder.ne(builder.sub(A8, B8), builder.add(A8, builder.neg(B8))),
        # Overflow conditions (DIODE and §1.1 validation): SAT with witness.
        overflow_condition(builder.mul(builder.zext(W16, 32), builder.zext(H16, 32))),
        overflow_condition(builder.mul(builder.zext(A8, 16), builder.const(255, 16))),
        # Range constraints (insertion-point reasoning).
        builder.logical_and(builder.ugt(A8, 200), builder.ult(A8, 100)),
        builder.logical_and(builder.ugt(W16, 40000), builder.ult(H16, 16)),
    ]
    rng = random.Random(0xBE7C)
    for _ in range(12):
        left = builder.add(builder.mul(A8, rng.randrange(1, 7)), rng.getrandbits(8))
        right = builder.bvxor(builder.mul(B8, rng.randrange(1, 7)), rng.getrandbits(8))
        conditions.append(builder.ne(left, right))
    return conditions


def test_backend_workload_json():
    workload = _workload()
    per_backend: dict[str, dict] = {}
    verdicts: dict[str, list[str]] = {}

    for name in sorted(BACKENDS):
        # A budget far above the 5000-conflict default: DPLL degenerates to
        # enumeration on UNSAT miters, and letting it finish is the point —
        # the JSON shows what clause learning buys on the same queries.
        engine = ValidationEngine(backend=name, conflict_limit=10_000_000)
        statuses = []
        for condition in workload:
            # Issue every query twice: the second ask must be a batch hit.
            statuses.append(engine.check_sat(condition).status.value)
            engine.check_sat(condition)
        verdicts[name] = statuses
        snapshot = engine.backend_snapshot()
        # The named backend's row carries the per-query totals; a portfolio's
        # row already *includes* its sub-backends' time and verdicts, so the
        # sub-rows contribute only what the top row lacks (search effort and
        # which sub-backend won) — summing all rows would double-count.
        top = snapshot[name]
        sub_rows = [stats for key, stats in snapshot.items() if key != name]
        search_rows = sub_rows or [top]
        per_backend[name] = {
            "wall_time_s": round(top["time_s"], 6),
            "solver_queries": int(top["queries"]),
            "conflicts": int(sum(row["conflicts"] for row in search_rows)),
            "decisions": int(sum(row["decisions"] for row in search_rows)),
            "learned_clauses": int(sum(row["learned_clauses"] for row in search_rows)),
            "sat": int(top["sat"]),
            "unsat": int(top["unsat"]),
            "unknown": int(top["unknown"]),
            "portfolio_wins": int(sum(row["wins"] for row in sub_rows)),
            "batch_dedupe_rate": round(engine.batch.dedupe_rate, 4),
            "batch_hits": engine.batch.hits,
        }
        # Every repeated query must have been answered by the batch.
        assert engine.batch.hits == len(workload)

    # Parity: identical verdicts across backends on every query (UNKNOWN
    # never appears at the default conflict budget on this workload).
    reference = verdicts[sorted(BACKENDS)[0]]
    for name, statuses in verdicts.items():
        assert statuses == reference, f"{name} diverged from {sorted(BACKENDS)[0]}"
        assert Status.UNKNOWN.value not in statuses

    out = write_benchmark_summary(
        "solver_backends",
        wall_ms={
            name: counters["wall_time_s"] * 1000.0
            for name, counters in per_backend.items()
        },
        counters={
            "queries": len(workload) * 2,
            "conflicts": sum(c["conflicts"] for c in per_backend.values()),
            "learned_clauses": sum(c["learned_clauses"] for c in per_backend.values()),
        },
        extra={"backends": per_backend},
    )

    print(f"\nPer-backend workload ({len(workload)} distinct queries, each asked twice; {out}):")
    for name, counters in per_backend.items():
        print(
            f"  {name:10s} {counters['wall_time_s'] * 1000.0:8.1f} ms  "
            f"{counters['conflicts']:6d} conflicts  "
            f"{counters['learned_clauses']:6d} learned  "
            f"dedupe {counters['batch_dedupe_rate']:.0%}"
        )
