"""E8 — recursive elimination of residual errors (the multi-patch rows).

Several Figure 8 rows transfer more than one check: after the first patch,
re-running DIODE on the patched recipient produces a new error-triggering
input, and CP recursively transfers additional checks until DIODE finds
nothing ("[X1, ..., Xn]" entries).  The bench reproduces that behaviour by
widening the validation rescan to every allocation site of the recipient
(Swfplay: the sampling-factor buffers *and* the RGBA merge buffers).
"""

import pytest

from repro.apps import get_application
from repro.core import CodePhage, CodePhageOptions
from repro.core.validation import ValidationOptions
from repro.experiments import ERROR_CASES


CASE = ERROR_CASES["swfplay-jpeg"]


def _transfer_with_program_scope():
    options = CodePhageOptions(validation=ValidationOptions(diode_scope="program"))
    phage = CodePhage(options)
    return phage.transfer(
        CASE.application(),
        CASE.target(),
        get_application("gnash"),
        CASE.seed_input(),
        CASE.error_input(),
        format_name="swf",
    )


@pytest.fixture(scope="module")
def outcome():
    return _transfer_with_program_scope()


def test_recursion_transfers_multiple_checks(outcome):
    assert outcome.success
    assert outcome.metrics.used_checks >= 2
    assert len(outcome.metrics.flipped_branches) >= 2


def test_final_program_has_no_overflow_anywhere(outcome):
    from repro.discovery import Diode
    from repro.formats import get_format
    from repro.lang import compile_program

    program = compile_program(outcome.patched_source, name="swfplay-hardened")
    findings = Diode(program, get_format("swf")).discover(CASE.seed_input())
    assert findings == []


def test_per_check_accounting_recorded(outcome):
    assert len(outcome.metrics.insertion_accounting) == outcome.metrics.used_checks
    assert len(outcome.metrics.check_sizes) == outcome.metrics.used_checks


def test_bench_recursive_repair(benchmark):
    result = benchmark.pedantic(_transfer_with_program_scope, rounds=1, iterations=1)
    assert result.success
