"""E4 — ablation of the two solver-call optimisations (§3.3).

"CP implements two optimizations that reduce the number of solver invocations:
1) if two symbolic expressions depend on different sets of input bytes, CP
does not invoke the solver and 2) CP caches all queries ... Together, these
two optimizations produce an order of magnitude reduction in the translation
times."  The bench reruns the rewrite stage of the worked example with the
optimisations enabled and disabled and compares expensive solver invocations.
"""

import pytest

from repro.apps import get_application
from repro.core import (
    Rewriter,
    discover_candidate_checks,
    excise_check,
    find_insertion_points,
    relevant_fields,
)
from repro.experiments import ERROR_CASES
from repro.formats import get_format
from repro.solver import EquivalenceChecker, EquivalenceOptions


CASE = ERROR_CASES["cwebp-jpegdec"]


@pytest.fixture(scope="module")
def rewrite_inputs():
    donor = get_application("feh")
    fmt = get_format("jpeg")
    seed, error = CASE.seed_input(), CASE.error_input()
    discovery = discover_candidate_checks(
        donor.program(), fmt, seed, error, relevant=relevant_fields(fmt, seed, error)
    )
    excised = excise_check(donor.program(), fmt, error, discovery.candidates[0], donor_name="feh")
    report = find_insertion_points(
        CASE.application().program(), seed, fmt.field_map(seed), excised.fields
    )
    return excised, report.stable_points


def _rewrite_all(excised, points, options: EquivalenceOptions):
    checker = EquivalenceChecker(options=options)
    translated = 0
    for point in points:
        if Rewriter(point.names, checker=checker).rewrite(excised.guard) is not None:
            translated += 1
    return checker.statistics, translated


def test_optimisations_reduce_solver_work(rewrite_inputs):
    excised, points = rewrite_inputs
    optimised, translated_opt = _rewrite_all(excised, points, EquivalenceOptions())
    unoptimised, translated_raw = _rewrite_all(
        excised, points, EquivalenceOptions(use_cache=False, use_disjoint_field_filter=False)
    )
    print("\nSolver statistics, optimisations on vs off:")
    print(f"  queries evaluated: {optimised.evaluated_queries} vs {unoptimised.evaluated_queries}")
    print(f"  cache hits: {optimised.cache_hits}, disjoint-field skips: {optimised.disjoint_field_skips}")
    assert translated_opt == translated_raw  # same results, less work
    assert optimised.cache_hits > 0
    # The paper reports an order-of-magnitude reduction in translation times;
    # the number of queries that must actually be evaluated shows the same factor.
    assert optimised.evaluated_queries * 5 <= unoptimised.evaluated_queries


def test_bench_rewrite_with_optimisations(rewrite_inputs, benchmark):
    excised, points = rewrite_inputs
    benchmark.pedantic(
        _rewrite_all, args=(excised, points, EquivalenceOptions()), rounds=1, iterations=1
    )


def test_bench_rewrite_without_optimisations(rewrite_inputs, benchmark):
    excised, points = rewrite_inputs
    benchmark.pedantic(
        _rewrite_all,
        args=(excised, points, EquivalenceOptions(use_cache=False, use_disjoint_field_filter=False)),
        rounds=1,
        iterations=1,
    )


# ---------------------------------------------------------------------------
# Interned IR: verdict and cache-key stability, cold vs warm memo
# ---------------------------------------------------------------------------


def test_interned_cache_keys_stable_across_checkers(rewrite_inputs, tmp_path):
    """Digest-derived persistent keys hit across checker/process boundaries.

    A second checker sharing the cache file must answer the same queries
    from the persistent cache (hit rate not degraded by interning) and reach
    identical translation results — digests, unlike object ids or interning
    order, are pure functions of expression structure.
    """
    excised, points = rewrite_inputs
    cache_path = str(tmp_path / "solver_cache.jsonl")

    cold, translated_cold = _rewrite_all(
        excised, points, EquivalenceOptions(persistent_cache_path=cache_path)
    )
    warm, translated_warm = _rewrite_all(
        excised, points, EquivalenceOptions(persistent_cache_path=cache_path)
    )

    assert translated_warm == translated_cold  # same verdicts
    assert warm.persistent_cache_hits > 0
    # Every expensive verdict the cold run computed is replayed, not redone.
    assert warm.solver_invocations < cold.solver_invocations or (
        cold.solver_invocations == 0
    )
    print(
        f"\npersistent cache across checkers: cold {cold.solver_invocations} "
        f"expensive queries, warm {warm.solver_invocations} "
        f"({warm.persistent_cache_hits} persistent hits)"
    )


def test_warm_simplify_memo_eliminates_rewrite_simplification(rewrite_inputs):
    """Re-running the whole rewrite stage re-simplifies (almost) nothing.

    The simplify memo is process-wide and keyed by interned node identity,
    so the donor check and the recipient-name expressions — already
    simplified by earlier queries — cost one memo probe each on repeat runs.
    """
    from repro.symbolic import reset_simplify_cache_stats, simplify_cache_stats

    excised, points = rewrite_inputs
    _rewrite_all(excised, points, EquivalenceOptions())  # prime the memo

    reset_simplify_cache_stats()
    _rewrite_all(excised, points, EquivalenceOptions())
    stats = simplify_cache_stats()
    print(
        f"\nwarm rewrite stage: {stats['visits']} simplify node visits, "
        f"{stats['hits']} memo hits"
    )
    assert stats["visits"] == 0
    assert stats["hits"] > 0
