"""E6 — check-size reduction (the Figure 8 "Check Size" column).

"We attribute the significant size reduction to the ability of the CP Rewrite
algorithm to recognize complex expressions that are semantically equivalent"
(§4.2).  Using the regenerated Figure 8 results, the bench checks that the
translated checks are never larger than the excised application-independent
checks and reports the aggregate reduction.

The second half of the file benchmarks the hash-consed IR itself: on a check
expression with heavy subtree sharing, the memoised (DAG) simplify, evaluate,
and bit-blast passes must perform measurably fewer node visits — and less
wall time — than the un-memoised tree-walking baselines, while producing
identical results.
"""

import time

from repro.solver.bitblast import BitBlaster
from repro.symbolic import (
    builder,
    clear_simplify_cache,
    evaluate,
    evaluate_tree,
    reset_simplify_cache_stats,
    simplify,
    simplify_cache_stats,
    simplify_reference,
)


def _pairs(figure8_results):
    pairs = []
    for record in figure8_results.records:
        for piece in record.check_size.replace("[", "").replace("]", "").split(","):
            if "->" in piece:
                before, after = piece.split("->")
                pairs.append((record.recipient, record.donor, int(before), int(after)))
    return pairs


def test_translated_checks_never_larger(figure8_results):
    for recipient, donor, before, after in _pairs(figure8_results):
        assert after <= before, f"{recipient}/{donor}: {before} -> {after}"


def test_aggregate_reduction_reported(figure8_results):
    pairs = _pairs(figure8_results)
    assert pairs
    total_before = sum(before for *_, before, _after in pairs)
    total_after = sum(after for *_, after in pairs)
    print(f"\nTotal excised ops {total_before} -> total translated ops {total_after}")
    assert total_after < total_before


def test_bench_summary_computation(figure8_results, benchmark):
    summary = benchmark(figure8_results.summary)
    assert summary["successful"] == summary["transfers"]
    assert summary["mean_check_size_reduction"] >= 1.0


# ---------------------------------------------------------------------------
# Interning / memoisation: DAG passes vs tree baselines
# ---------------------------------------------------------------------------


def _shared_subtree_check(doublings: int = 10):
    """A §2-style size check whose buffer term is reused 2**doublings times.

    ``stride * height`` (the CWebP overflow shape) is summed with itself
    repeatedly, modelling a check over an accumulated multi-plane buffer
    size: the tree doubles at every level while the DAG grows by one node.
    """
    width = builder.input_field("/bench/sof/width", 16)
    height = builder.input_field("/bench/sof/height", 16)
    stride = builder.mul(builder.zext(width, 32), 3)
    plane = builder.mul(stride, builder.zext(height, 32))
    total = plane
    for _ in range(doublings):
        total = builder.add(total, total)
    return builder.ule(total, 0x0FFFFFFF)


def test_memoized_simplify_visits_fewer_nodes():
    check = _shared_subtree_check()
    tree_nodes = check.size
    dag_nodes = len(list(check.walk_unique()))
    assert dag_nodes * 50 < tree_nodes  # the input really is share-heavy

    clear_simplify_cache()
    reset_simplify_cache_stats()
    reference = simplify_reference(check)
    reference_visits = simplify_cache_stats()["visits"]

    clear_simplify_cache()
    reset_simplify_cache_stats()
    memoized = simplify(check)
    memoized_visits = simplify_cache_stats()["visits"]

    assert memoized is reference  # interning: same canonical result node
    print(
        f"\nsimplify node visits on a {tree_nodes}-node tree "
        f"({dag_nodes}-node DAG): reference {reference_visits}, "
        f"memoized {memoized_visits}"
    )
    assert memoized_visits * 10 < reference_visits

    # A warm re-simplify of the same node is a single memo probe.
    reset_simplify_cache_stats()
    assert simplify(check) is memoized
    assert simplify_cache_stats()["visits"] == 0


def test_memoized_evaluate_matches_and_outpaces_tree_walk():
    check = _shared_subtree_check(doublings=12)
    env = {"/bench/sof/width": 640, "/bench/sof/height": 480}

    started = time.perf_counter()
    memoized_value = evaluate(check, env)
    memoized_s = time.perf_counter() - started

    started = time.perf_counter()
    tree_value = evaluate_tree(check, env)
    tree_s = time.perf_counter() - started

    assert memoized_value == tree_value
    print(
        f"\nevaluate on a {check.size}-node tree: "
        f"DAG {memoized_s * 1e3:.2f}ms vs tree {tree_s * 1e3:.2f}ms"
    )
    assert memoized_s < tree_s


def test_bitblast_translates_shared_subtrees_once():
    check = _shared_subtree_check()
    blaster = BitBlaster()
    blaster.blast(check)
    dag_nodes = len(list(check.walk_unique()))
    print(
        f"\nbitblast visits on a {check.size}-node tree: "
        f"{blaster.nodes_visited} (DAG size {dag_nodes})"
    )
    assert blaster.nodes_visited == dag_nodes
    assert blaster.nodes_visited * 50 < check.size


def test_bench_simplify_interned(benchmark):
    check = _shared_subtree_check()

    def warm():
        clear_simplify_cache()
        return simplify(check)

    benchmark(warm)


def test_bench_simplify_reference_baseline(benchmark):
    check = _shared_subtree_check()
    benchmark(simplify_reference, check)
