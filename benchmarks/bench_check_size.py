"""E6 — check-size reduction (the Figure 8 "Check Size" column).

"We attribute the significant size reduction to the ability of the CP Rewrite
algorithm to recognize complex expressions that are semantically equivalent"
(§4.2).  Using the regenerated Figure 8 results, the bench checks that the
translated checks are never larger than the excised application-independent
checks and reports the aggregate reduction.
"""


def _pairs(figure8_results):
    pairs = []
    for record in figure8_results.records:
        for piece in record.check_size.replace("[", "").replace("]", "").split(","):
            if "->" in piece:
                before, after = piece.split("->")
                pairs.append((record.recipient, record.donor, int(before), int(after)))
    return pairs


def test_translated_checks_never_larger(figure8_results):
    for recipient, donor, before, after in _pairs(figure8_results):
        assert after <= before, f"{recipient}/{donor}: {before} -> {after}"


def test_aggregate_reduction_reported(figure8_results):
    pairs = _pairs(figure8_results)
    assert pairs
    total_before = sum(before for *_, before, _after in pairs)
    total_after = sum(after for *_, after in pairs)
    print(f"\nTotal excised ops {total_before} -> total translated ops {total_after}")
    assert total_after < total_before


def test_bench_summary_computation(figure8_results, benchmark):
    summary = benchmark(figure8_results.summary)
    assert summary["successful"] == summary["transfers"]
    assert summary["mean_check_size_reduction"] >= 1.0
