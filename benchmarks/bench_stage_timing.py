"""Per-stage wall-time breakdown of the transfer pipeline.

Runs a representative subset of Figure 8 rows (every error class) through
the ``repro.api`` facade and emits ``results/stage_timing.json`` — a
shared-schema benchmark summary (per-stage wall-ms breakdown, the
``validation_share`` counter the perf-trajectory ledger gates, and the
per-row detail under ``extra``).  Run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest benchmarks/bench_stage_timing.py -q -s
"""

from __future__ import annotations

from repro.api import RepairSession
from repro.experiments import Figure8Row, run_row

from conftest import write_benchmark_summary

#: One row per error class, plus the multiversion scenario.
ROWS = [
    ("cwebp-jpegdec", "feh"),
    ("jasper-tiles", "openjpeg"),
    ("gif2tiff-lzw", "display-6.5.2-9"),
    ("wireshark-dcp", "wireshark-1.8.6"),
]


def test_stage_timing_breakdown_json():
    session = RepairSession()
    per_row: dict[str, dict[str, float]] = {}
    totals: dict[str, float] = {}

    for case_id, donor in ROWS:
        outcome = run_row(Figure8Row(case_id=case_id, donor=donor), session=session)
        assert outcome.success, outcome.failure_reason
        timings = outcome.metrics.stage_timings
        assert timings, "the event stream produced no stage timings"
        assert sum(timings.values()) <= outcome.metrics.generation_time_s
        per_row[f"{case_id} <- {donor}"] = {
            stage: round(elapsed, 4) for stage, elapsed in timings.items()
        }
        for stage, elapsed in timings.items():
            totals[stage] = totals.get(stage, 0.0) + elapsed

    dominant = max(totals, key=totals.get)
    total_s = sum(totals.values())
    out = write_benchmark_summary(
        "stage_timing",
        wall_ms={stage: elapsed * 1000.0 for stage, elapsed in totals.items()},
        counters={
            "validation_share": round(totals.get("validation", 0.0) / total_s, 4)
            if total_s
            else 0.0,
            "transfers": len(ROWS),
        },
        extra={"rows": per_row, "dominant_stage": dominant},
    )

    print(f"\nPer-stage wall time over {len(ROWS)} transfers (written to {out}):")
    width = max(len(stage) for stage in totals)
    for stage, elapsed in sorted(totals.items(), key=lambda item: -item[1]):
        share = elapsed / sum(totals.values())
        print(f"  {stage:{width}s}  {elapsed * 1000.0:8.1f} ms  {share:6.1%}")
    print(f"  dominant stage: {dominant}")
