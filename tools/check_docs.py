#!/usr/bin/env python3
"""Fail when architecture docs reference module paths that no longer exist.

``docs/ARCHITECTURE.md`` is a prose map of ``src/repro/``; nothing ties it to
the code except this check.  It extracts every backtick-quoted reference that
looks like a repository path (``src/repro/...``, ``benchmarks/...``,
``examples/...``, ``tools/...``, ``docs/...``) or a dotted module name
(``repro.solver.equivalence``) and verifies the file or directory exists.

Run from the repository root (CI does)::

    python tools/check_docs.py [files...]

Defaults to checking ``docs/ARCHITECTURE.md`` and ``README.md``.  Exits
non-zero listing every stale reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Backticked repo paths: `src/repro/foo/bar.py`, `benchmarks/`, ...
_PATH_PATTERN = re.compile(
    r"`((?:src|benchmarks|examples|tools|docs|tests)/[A-Za-z0-9_./-]+)`"
)

#: Backticked dotted modules rooted at the package: `repro.solver.sat`.
_MODULE_PATTERN = re.compile(r"`(repro(?:\.[A-Za-z0-9_]+)+)`")


def _path_exists(reference: str) -> bool:
    candidate = REPO_ROOT / reference
    return candidate.exists()


def _module_exists(dotted: str) -> bool:
    relative = Path("src", *dotted.split("."))
    return (REPO_ROOT / relative).is_dir() or (
        REPO_ROOT / relative.with_suffix(".py")
    ).is_file()


def stale_references(document: Path) -> list[str]:
    """Every referenced path/module in ``document`` that does not exist."""
    text = document.read_text(encoding="utf-8")
    stale = []
    for match in _PATH_PATTERN.finditer(text):
        reference = match.group(1).rstrip("/")
        if not _path_exists(reference):
            stale.append(reference)
    for match in _MODULE_PATTERN.finditer(text):
        reference = match.group(1)
        if not _module_exists(reference):
            stale.append(reference)
    return sorted(set(stale))


def main(argv: list[str]) -> int:
    documents = [Path(arg) for arg in argv] or [
        REPO_ROOT / "docs" / "ARCHITECTURE.md",
        REPO_ROOT / "README.md",
    ]
    failures = 0
    for document in documents:
        if not document.exists():
            print(f"{document}: missing document", file=sys.stderr)
            failures += 1
            continue
        stale = stale_references(document)
        for reference in stale:
            print(f"{document}: stale reference {reference!r}", file=sys.stderr)
        failures += len(stale)
    if failures:
        print(f"{failures} stale documentation reference(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
