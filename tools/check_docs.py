#!/usr/bin/env python3
"""Fail when docs reference module paths or link targets that don't exist.

The prose docs (``docs/ARCHITECTURE.md``, ``docs/SOLVER.md``,
``docs/SCENARIOS.md``, ``README.md``) are maps of ``src/repro/``; nothing
ties them to the code except this check.  The defaults are ``docs/*.md``
plus ``README.md``, so a newly added document is covered the moment it
lands in ``docs/``.
Two classes of reference are verified:

* **code references** — every backtick-quoted repository path
  (``src/repro/...``, ``benchmarks/...``, ``examples/...``, ``tools/...``,
  ``docs/...``, ``tests/...``) or dotted module name
  (``repro.solver.equivalence``) must exist;
* **links** — every relative markdown link target (``[text](FILE.md)``,
  anchors stripped) and every ``[[FILE]]``-style wiki link must resolve to a
  file, relative to the linking document (absolute ``http(s)://`` and
  ``mailto:`` targets are skipped).

Run from the repository root (CI does)::

    python tools/check_docs.py [--links-only] [files...]

Defaults to checking ``docs/*.md`` and ``README.md``.  Exits non-zero
listing every stale reference.  The default mode runs the code-reference
checks; ``--links-only`` runs the link checks instead — CI runs the two
modes as separate, clearly named steps, so each class of breakage fails
under its own step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Backticked repo paths: `src/repro/foo/bar.py`, `benchmarks/`, ...
_PATH_PATTERN = re.compile(
    r"`((?:src|benchmarks|examples|tools|docs|tests)/[A-Za-z0-9_./-]+)`"
)

#: Backticked dotted modules rooted at the package: `repro.solver.sat`.
_MODULE_PATTERN = re.compile(r"`(repro(?:\.[A-Za-z0-9_]+)+)`")

#: Markdown links `[text](target)`; the target is group 1, anchor excluded.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s#]+)(?:#[^)]*)?\)")

#: Wiki-style links `[[target]]` (optionally `[[target|label]]`).
_WIKILINK_PATTERN = re.compile(r"\[\[([^\]|]+)(?:\|[^\]]*)?\]\]")

#: Link schemes that point outside the repository and are not checked.
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def _path_exists(reference: str) -> bool:
    return (REPO_ROOT / reference).exists()


def _module_exists(dotted: str) -> bool:
    relative = Path("src", *dotted.split("."))
    return (REPO_ROOT / relative).is_dir() or (
        REPO_ROOT / relative.with_suffix(".py")
    ).is_file()


def stale_references(document: Path) -> list[str]:
    """Every referenced code path/module in ``document`` that does not exist."""
    text = document.read_text(encoding="utf-8")
    stale = []
    for match in _PATH_PATTERN.finditer(text):
        reference = match.group(1).rstrip("/")
        if not _path_exists(reference):
            stale.append(reference)
    for match in _MODULE_PATTERN.finditer(text):
        reference = match.group(1)
        if not _module_exists(reference):
            stale.append(reference)
    return sorted(set(stale))


def stale_links(document: Path) -> list[str]:
    """Every relative markdown/wiki link in ``document`` with no target file.

    Targets resolve relative to the linking document; ``[[name]]`` links may
    omit the ``.md`` suffix.
    """
    text = document.read_text(encoding="utf-8")
    targets: set[str] = set()
    for match in _LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        targets.add(target)
    for match in _WIKILINK_PATTERN.finditer(text):
        targets.add(match.group(1).strip())

    stale = []
    base = document.parent
    for target in targets:
        candidates = [base / target]
        if not Path(target).suffix:
            candidates.append(base / f"{target}.md")
        if not any(candidate.exists() for candidate in candidates):
            stale.append(target)
    return sorted(stale)


def default_documents() -> list[Path]:
    return sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]


def main(argv: list[str]) -> int:
    links_only = "--links-only" in argv
    arguments = [arg for arg in argv if arg != "--links-only"]
    documents = [Path(arg) for arg in arguments] or default_documents()
    failures = 0
    for document in documents:
        if not document.exists():
            print(f"{document}: missing document", file=sys.stderr)
            failures += 1
            continue
        stale = [] if links_only else stale_references(document)
        for reference in stale:
            print(f"{document}: stale reference {reference!r}", file=sys.stderr)
        broken = stale_links(document) if links_only else []
        for target in broken:
            print(f"{document}: broken link {target!r}", file=sys.stderr)
        failures += len(stale) + len(broken)
    if failures:
        print(f"{failures} stale documentation reference(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
