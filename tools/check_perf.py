#!/usr/bin/env python3
"""Gate CI on the committed perf-trajectory ledger.

The benchmarks write shared-schema summaries into ``results/``
(``benchmarks/conftest.write_benchmark_summary``); the committed ledger
``benchmarks/trajectory.json`` records those summaries over time
(:mod:`repro.obs.ledger`).  This tool has two modes:

* **check** (default): compare the current ``results/`` summaries against
  the ledger's latest entry and exit non-zero on any regression of more
  than ``--max-regression`` (default 25%) in a benchmark's total wall time
  or in a gated counter (``validation_share``).  An empty ledger or an
  empty ``results/`` directory passes with a note — there is nothing to
  gate against yet.
* **--append**: fold the current summaries into a new ledger entry (used to
  record a fresh baseline; commit the updated ``benchmarks/trajectory.json``
  afterwards).

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_perf.py                # gate
    PYTHONPATH=src python tools/check_perf.py --append --label "PR 6 baseline"
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import ledger  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ledger",
        default=str(REPO_ROOT / ledger.DEFAULT_LEDGER),
        help="trajectory ledger path (default: benchmarks/trajectory.json)",
    )
    parser.add_argument(
        "--results",
        default=str(REPO_ROOT / "results"),
        help="directory holding the benchmark summary JSONs",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="relative allowance before a gated metric fails (default 0.25)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="record the current summaries as a new ledger entry instead of gating",
    )
    parser.add_argument(
        "--source", default="local", help="entry source tag for --append (e.g. ci)"
    )
    parser.add_argument("--label", default="", help="entry label for --append")
    args = parser.parse_args(argv)

    summaries = ledger.load_summaries(args.results)

    if args.append:
        if not summaries:
            print(f"check_perf: no benchmark summaries under {args.results}", file=sys.stderr)
            return 2
        entry = ledger.entry_from_summaries(summaries, source=args.source, label=args.label)
        updated = ledger.append_entry(args.ledger, entry)
        print(
            f"check_perf: appended entry #{len(updated['entries'])} "
            f"({', '.join(sorted(summaries))}) to {args.ledger}"
        )
        return 0

    if not summaries:
        print(
            f"check_perf: no benchmark summaries under {args.results}; "
            "run the benchmarks first — nothing to gate"
        )
        return 0
    baseline = ledger.baseline_entry(ledger.load_ledger(args.ledger))
    if baseline is None:
        print(f"check_perf: ledger {args.ledger} is empty; nothing to gate against")
        return 0

    current = ledger.entry_from_summaries(summaries, source="check")
    regressions = ledger.compare_entries(baseline, current, args.max_regression)
    shared = sorted(set(baseline.get("benchmarks") or {}) & set(summaries))
    print(
        f"check_perf: gating {len(shared)} benchmark(s) "
        f"({', '.join(shared) or 'none'}) at {args.max_regression:.0%} allowance "
        f"against {args.ledger}"
    )
    for name in shared:
        base = baseline["benchmarks"][name]
        cur = current["benchmarks"][name]
        base_ms = (base.get("wall_ms") or {}).get("total", 0.0)
        cur_ms = (cur.get("wall_ms") or {}).get("total", 0.0)
        delta = (cur_ms / base_ms - 1.0) if base_ms else 0.0
        print(f"  {name}: {base_ms:.1f}ms -> {cur_ms:.1f}ms ({delta:+.1%})")
    if regressions:
        print("check_perf: FAIL — perf trajectory regressions:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        return 1
    print("check_perf: OK — no gated metric regressed past the allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
